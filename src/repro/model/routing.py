"""Dependency-aware request routing given a fixed placement.

Once instances are placed, each request must pick one hosting node per
chain position.  Two engines are provided:

* :func:`optimal_routing` — exact minimum-latency assignment per request
  via dynamic programming over chain layers (Viterbi): for the *chain*
  latency model the transition cost couples consecutive positions; for
  the *star* model positions decouple and the DP reduces to independent
  argmins.  This is the routing used when reporting SoCL's final
  objective (the paper: "we optimize routing schedules while calculating
  latency, addressing both microservice dependencies and dynamic edge
  network conditions").
* :func:`greedy_routing` — the paper's reliance rule used inside the
  combination stage: each position independently picks the hosting node
  with the highest channel speed from the user's home
  (``v_q = argmax b(l'_{f(u_h), q})``), ties broken by compute power.

Services without any edge instance fall back to the cloud node.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.model.instance import ProblemInstance
from repro.model.placement import Placement, Routing


def _host_lists(instance: ProblemInstance, placement: Placement) -> list[np.ndarray]:
    """Per-service candidate node arrays (cloud appended when empty)."""
    cloud = instance.cloud
    hosts: list[np.ndarray] = []
    for i in range(instance.n_services):
        h = placement.hosts(i)
        if h.size == 0:
            h = np.array([cloud], dtype=np.int64)
        hosts.append(h)
    return hosts


def route_request(
    instance: ProblemInstance,
    placement: Placement,
    h: int,
    model: Optional[str] = None,
    hosts: Optional[list[np.ndarray]] = None,
) -> np.ndarray:
    """Minimum-latency node sequence for request ``h`` (DP over layers).

    Returns an array of extended node indices with length equal to the
    request's chain length.
    """
    model = model or instance.config.latency_model
    req = instance.requests[h]
    if hosts is None:
        hosts = _host_lists(instance, placement)
    inv = instance.inv_rate
    comp = instance.compute_ext
    q = instance.service_compute
    home = req.home

    if model == "star":
        # positions decouple: cost_j(k) = inflow_j·inv[home,k] + q_j/c_k
        nodes = np.empty(req.length, dtype=np.int64)
        inflow = [req.data_in, *req.edge_data]
        for j, svc in enumerate(req.chain):
            cand = hosts[svc]
            cost = inflow[j] * inv[home, cand] + q[svc] / comp[cand]
            if j == req.length - 1:
                cost = cost + req.data_out * inv[cand, home]
            nodes[j] = cand[int(np.argmin(cost))]
        return nodes

    # chain model: Viterbi over layers
    cand0 = hosts[req.chain[0]]
    cost = req.data_in * inv[home, cand0] + q[req.chain[0]] / comp[cand0]
    back: list[np.ndarray] = []
    prev_cand = cand0
    for j in range(1, req.length):
        svc = req.chain[j]
        cand = hosts[svc]
        # transition (|prev| × |cand|): transfer + processing at cand
        trans = (
            cost[:, None]
            + req.edge_data[j - 1] * inv[np.ix_(prev_cand, cand)]
            + (q[svc] / comp[cand])[None, :]
        )
        argmin = trans.argmin(axis=0)
        back.append(argmin)
        cost = trans[argmin, np.arange(cand.size)]
        prev_cand = cand

    # return leg
    cost = cost + req.data_out * inv[prev_cand, home]
    nodes = np.empty(req.length, dtype=np.int64)
    idx = int(np.argmin(cost))
    nodes[-1] = prev_cand[idx]
    for j in range(req.length - 1, 0, -1):
        idx = int(back[j - 1][idx])
        nodes[j - 1] = hosts[req.chain[j - 1]][idx]
    return nodes


def optimal_routing(
    instance: ProblemInstance,
    placement: Placement,
    model: Optional[str] = None,
) -> Routing:
    """Exact minimum-latency routing for every request."""
    hosts = _host_lists(instance, placement)
    H, L = instance.n_requests, instance.max_chain
    a = np.full((H, L), -1, dtype=np.int64)
    for h in range(H):
        nodes = route_request(instance, placement, h, model=model, hosts=hosts)
        a[h, : nodes.size] = nodes
    return Routing(instance, a)


def load_aware_routing(
    instance: ProblemInstance,
    placement: Placement,
    congestion_weight: float = 1.0,
    model: Optional[str] = None,
) -> Routing:
    """Queue-aware routing: optimal per request against a load-inflated
    compute model.

    The analytic latency model (Eq. 2) prices processing at the raw rate
    ``q/c`` regardless of how many requests share a server; under real
    contention (the DES cluster, paper §V.C) concentrating traffic on
    one fast node queues.  This engine routes requests *sequentially*,
    tracking the compute load (GFLOP) already committed to each server
    and inflating each server's effective processing delay by
    ``1 + congestion_weight · load_k / c_k`` — a fluid M/G/1-style
    congestion proxy.  Requests are processed in descending compute
    demand so heavy chains claim capacity first.

    With ``congestion_weight=0`` this reduces exactly to
    :func:`optimal_routing`.
    """
    if congestion_weight < 0:
        raise ValueError(
            f"congestion_weight must be non-negative, got {congestion_weight}"
        )
    model = model or instance.config.latency_model
    hosts = _host_lists(instance, placement)
    inv = instance.inv_rate
    base_comp = instance.compute_ext.copy()
    q = instance.service_compute
    H, L = instance.n_requests, instance.max_chain
    a = np.full((H, L), -1, dtype=np.int64)

    load = np.zeros(base_comp.size)
    order = sorted(
        range(H),
        key=lambda h: -float(q[list(instance.requests[h].chain)].sum()),
    )
    for h in order:
        req = instance.requests[h]
        # effective rates under current committed load
        eff = base_comp / (1.0 + congestion_weight * load / base_comp)
        nodes = _route_one(instance, req, hosts, inv, eff, model)
        a[h, : nodes.size] = nodes
        for j, svc in enumerate(req.chain):
            load[nodes[j]] += q[svc]
    return Routing(instance, a)


def _route_one(instance, req, hosts, inv, comp, model) -> np.ndarray:
    """Single-request DP shared by the optimal and load-aware engines."""
    q = instance.service_compute
    home = req.home
    if model == "star":
        nodes = np.empty(req.length, dtype=np.int64)
        inflow = [req.data_in, *req.edge_data]
        for j, svc in enumerate(req.chain):
            cand = hosts[svc]
            cost = inflow[j] * inv[home, cand] + q[svc] / comp[cand]
            if j == req.length - 1:
                cost = cost + req.data_out * inv[cand, home]
            nodes[j] = cand[int(np.argmin(cost))]
        return nodes

    cand0 = hosts[req.chain[0]]
    cost = req.data_in * inv[home, cand0] + q[req.chain[0]] / comp[cand0]
    back: list[np.ndarray] = []
    prev_cand = cand0
    for j in range(1, req.length):
        svc = req.chain[j]
        cand = hosts[svc]
        trans = (
            cost[:, None]
            + req.edge_data[j - 1] * inv[np.ix_(prev_cand, cand)]
            + (q[svc] / comp[cand])[None, :]
        )
        argmin = trans.argmin(axis=0)
        back.append(argmin)
        cost = trans[argmin, np.arange(cand.size)]
        prev_cand = cand
    cost = cost + req.data_out * inv[prev_cand, home]
    nodes = np.empty(req.length, dtype=np.int64)
    idx = int(np.argmin(cost))
    nodes[-1] = prev_cand[idx]
    for j in range(req.length - 1, 0, -1):
        idx = int(back[j - 1][idx])
        nodes[j - 1] = hosts[req.chain[j - 1]][idx]
    return nodes


def greedy_routing(
    instance: ProblemInstance,
    placement: Placement,
) -> Routing:
    """Paper-style reliance routing: max channel speed from home.

    Each chain position independently selects the hosting node ``v_q``
    maximizing ``b(l'_{f(u_h), q})`` — i.e. minimizing the transfer
    coefficient ``inv_rate[home, q]`` — with ties broken by higher
    compute power, and the home node itself always preferred (local
    service has infinite channel speed).
    """
    hosts = _host_lists(instance, placement)
    inv = instance.inv_rate
    comp = instance.compute_ext
    H, L = instance.n_requests, instance.max_chain
    a = np.full((H, L), -1, dtype=np.int64)
    for h, req in enumerate(instance.requests):
        home = req.home
        for j, svc in enumerate(req.chain):
            cand = hosts[svc]
            key = inv[home, cand] - 1e-12 * comp[cand]  # tie-break on compute
            a[h, j] = cand[int(np.argmin(key))]
    return Routing(instance, a)
