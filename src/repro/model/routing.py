"""Dependency-aware request routing given a fixed placement.

Once instances are placed, each request must pick one hosting node per
chain position.  Two engines are provided:

* :func:`optimal_routing` — exact minimum-latency assignment per request
  via dynamic programming over chain layers (Viterbi): for the *chain*
  latency model the transition cost couples consecutive positions; for
  the *star* model positions decouple and the DP reduces to independent
  argmins.  This is the routing used when reporting SoCL's final
  objective (the paper: "we optimize routing schedules while calculating
  latency, addressing both microservice dependencies and dynamic edge
  network conditions").
* :func:`greedy_routing` — the paper's reliance rule used inside the
  combination stage: each position independently picks the hosting node
  with the highest channel speed from the user's home
  (``v_q = argmax b(l'_{f(u_h), q})``), ties broken by compute power.

Both engines are *batched*: instead of one Python-level DP per request,
the star model routes every chain position of the whole workload with a
single masked broadcast, and the chain model runs one padded Viterbi over
the entire workload at once — ``max_chain`` layer steps with the requests
as the batch axis, regardless of how many distinct chain signatures
exist.  Results — including argmin tie-breaking — are identical to the
per-request DP (:func:`_route_one`), which remains the reference kernel
and is still used by the sequential :func:`load_aware_routing` engine.

Services without any edge instance fall back to the cloud node.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.model.instance import ProblemInstance
from repro.model.placement import Placement, Routing


def _host_lists(instance: ProblemInstance, placement: Placement) -> list[np.ndarray]:
    """Per-service candidate node arrays (cloud appended when empty)."""
    cloud = instance.cloud
    hosts: list[np.ndarray] = []
    for i in range(instance.n_services):
        h = placement.hosts(i)
        if h.size == 0:
            h = np.array([cloud], dtype=np.int64)
        hosts.append(h)
    return hosts


def _padded_hosts(hosts: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-service host arrays into ``(S, Hmax)`` index/valid pair.

    Padding slots repeat index 0 and are masked out by ``valid``; host
    order (ascending node index) is preserved so masked argmins break
    ties exactly like the per-service loops.
    """
    n_services = len(hosts)
    hmax = max(h.size for h in hosts)
    pad = np.zeros((n_services, hmax), dtype=np.int64)
    valid = np.zeros((n_services, hmax), dtype=bool)
    for i, h in enumerate(hosts):
        pad[i, : h.size] = h
        valid[i, : h.size] = True
    return pad, valid


def route_request(
    instance: ProblemInstance,
    placement: Placement,
    h: int,
    model: Optional[str] = None,
    hosts: Optional[list[np.ndarray]] = None,
) -> np.ndarray:
    """Minimum-latency node sequence for request ``h`` (DP over layers).

    Returns an array of extended node indices with length equal to the
    request's chain length.  Thin wrapper over :func:`_route_one`, the
    single-request reference kernel.
    """
    model = model or instance.config.latency_model
    if hosts is None:
        hosts = _host_lists(instance, placement)
    return _route_one(
        instance,
        instance.requests[h],
        hosts,
        instance.inv_rate,
        instance.compute_ext,
        model,
    )


# ----------------------------------------------------------------------
# batched kernels
# ----------------------------------------------------------------------
def _star_assign(
    instance: ProblemInstance,
    hosts: list[np.ndarray],
    comp: np.ndarray,
    a: np.ndarray,
    services: Optional[np.ndarray] = None,
    rows: Optional[np.ndarray] = None,
) -> None:
    """Star-model batch kernel: one masked broadcast, no per-request loop.

    Positions decouple under the star model, so every valid ``(h, j)``
    chain position of the workload becomes one row of a flat
    ``(positions, Hmax)`` cost matrix; a single masked argmin yields all
    assignments at once.  ``services`` restricts the update to positions
    whose service is in the set (incremental re-routing after a placement
    change that touched only those services); ``rows`` restricts it to a
    subset of requests (:func:`partial_reroute`).

    A pure ``(service, home)`` argmin table would be even smaller, but it
    is exact only when all requests ship identical data volumes: the
    inflow term ``r·inv[home, k]`` scales with the per-request volume and
    can flip the argmin, so we keep the per-position rows.
    """
    inst = instance
    mask = inst.chain_mask
    chain = inst.chain_matrix
    if rows is not None:
        row_mask = np.zeros(mask.shape[0], dtype=bool)
        row_mask[rows] = True
        mask = mask & row_mask[:, None]
    if services is not None:
        mask = mask & np.isin(chain, services)
    hs, js = np.nonzero(mask)
    if hs.size == 0:
        return
    pad, valid = _padded_hosts(hosts)
    inv = inst.inv_rate
    q = inst.service_compute
    svc = chain[hs, js]
    cand = pad[svc]  # (P, Hmax)
    home = inst.homes[hs]
    w_in = inst.inflow_matrix[hs, js]
    last = js == inst.chain_lengths[hs] - 1
    out_w = np.where(last, inst.data_out[hs], 0.0)
    cost = w_in[:, None] * inv[home[:, None], cand] + q[svc][:, None] / comp[cand]
    cost = cost + out_w[:, None] * inv[cand, home[:, None]]
    cost[~valid[svc]] = np.inf
    pick = np.argmin(cost, axis=1)
    a[hs, js] = cand[np.arange(hs.size), pick]


def _chain_assign_batch(
    instance: ProblemInstance,
    hosts: list[np.ndarray],
    comp: np.ndarray,
    a: np.ndarray,
    rows: Optional[np.ndarray] = None,
) -> None:
    """Chain-model batch kernel: one padded Viterbi for the whole workload.

    Candidate sets are padded to a common width (``_padded_hosts``) so
    requests with *different* chains share the same layer step: the DP
    advances layer by layer over a ``(requests, prev, cand)`` transition
    tensor — ``max_chain`` vectorized steps total, regardless of how many
    requests or distinct chain signatures exist.  Requests whose chain
    has already ended simply drop out of the active row set (chains are
    contiguous, so the active sets are nested).  Backtracking runs once
    per distinct chain *length* (each request's terminal ``data_out`` leg
    applies at its own last layer).

    Padding slots repeat host index 0; their column costs are forced to
    ``+inf`` after every layer so argmins — taken over candidates in
    ascending host order, padding last — break ties exactly like the
    per-request reference kernel :func:`_route_one`.

    ``rows`` restricts the DP to a subset of requests (incremental
    re-routing); assignments for other requests are left untouched.
    """
    inst = instance
    inv = inst.inv_rate
    q = inst.service_compute
    pad, valid = _padded_hosts(hosts)
    if rows is None:
        chain = inst.chain_matrix
        mask = inst.chain_mask
        homes = inst.homes
        data_in, data_out = inst.data_in, inst.data_out
        edge_w = inst.edge_data_matrix
        lengths = inst.chain_lengths
    else:
        chain = inst.chain_matrix[rows]
        mask = inst.chain_mask[rows]
        homes = inst.homes[rows]
        data_in, data_out = inst.data_in[rows], inst.data_out[rows]
        edge_w = inst.edge_data_matrix[rows]
        lengths = inst.chain_lengths[rows]
    n_rows, n_layers = chain.shape
    if n_rows == 0:
        return
    width = pad.shape[1]
    cols = np.arange(width)

    # forward pass: costs[j] / backs[j-1] restricted to the rows whose
    # chain reaches layer j (``acts[j]``, sorted and nested)
    svc0 = chain[:, 0]
    cand0 = pad[svc0]
    cost = data_in[:, None] * inv[homes[:, None], cand0] + q[svc0][:, None] / comp[cand0]
    cost[~valid[svc0]] = np.inf
    acts: list[np.ndarray] = [np.arange(n_rows)]
    costs: list[np.ndarray] = [cost]
    backs: list[np.ndarray] = []
    for j in range(1, n_layers):
        act = np.nonzero(mask[:, j])[0]
        if act.size == 0:
            break
        prev_pos = np.searchsorted(acts[j - 1], act)
        svc = chain[act, j]
        prev_cand = pad[chain[act, j - 1]]
        cand = pad[svc]
        ew = edge_w[act, j - 1]
        trans = (
            costs[j - 1][prev_pos][:, :, None]
            + ew[:, None, None] * inv[prev_cand[:, :, None], cand[:, None, :]]
            + (q[svc][:, None] / comp[cand])[:, None, :]
        )
        argmin = trans.argmin(axis=1)  # (|act|, width)
        cost = trans[np.arange(act.size)[:, None], argmin, cols[None, :]]
        cost[~valid[svc]] = np.inf
        acts.append(act)
        costs.append(cost)
        backs.append(argmin)

    # terminal leg + backtrack, one vectorized pass per distinct length
    for length in np.unique(lengths):
        length = int(length)
        grp = np.nonzero(lengths == length)[0]
        pos = np.searchsorted(acts[length - 1], grp)
        last_cand = pad[chain[grp, length - 1]]
        final = costs[length - 1][pos] + data_out[grp][:, None] * inv[
            last_cand, homes[grp][:, None]
        ]
        sel = final.argmin(axis=1)
        grp_rows = np.arange(grp.size)
        out_rows = grp if rows is None else rows[grp]
        a[out_rows, length - 1] = last_cand[grp_rows, sel]
        for j in range(length - 1, 0, -1):
            sel = backs[j - 1][np.searchsorted(acts[j], grp), sel]
            a[out_rows, j - 1] = pad[chain[grp, j - 1]][grp_rows, sel]


def optimal_routing(
    instance: ProblemInstance,
    placement: Placement,
    model: Optional[str] = None,
) -> Routing:
    """Exact minimum-latency routing for every request (batched).

    Identical results (including tie-breaking) to running
    :func:`_route_one` per request; see the batch kernels above for how
    the per-request loop is collapsed.
    """
    model = model or instance.config.latency_model
    hosts = _host_lists(instance, placement)
    H, L = instance.n_requests, instance.max_chain
    a = np.full((H, L), -1, dtype=np.int64)
    if model == "star":
        _star_assign(instance, hosts, instance.compute_ext, a)
    else:
        _chain_assign_batch(instance, hosts, instance.compute_ext, a)
    return Routing(instance, a)


def partial_reroute(
    instance: ProblemInstance,
    placement: Placement,
    rows: np.ndarray,
    assignment: np.ndarray,
    model: Optional[str] = None,
) -> Routing:
    """Re-route only ``rows`` against ``placement``; other rows keep their
    existing assignment.

    The workhorse behind resilience-aware warm starts: when a handful of
    requests were routed through instances that later crashed
    (:meth:`repro.core.online.OnlineSoCL.note_failures`), only those
    requests re-run the batched DP — the rest of ``assignment`` is copied
    through untouched, so the call costs ``O(|rows|)`` layer steps
    instead of a full-workload solve.  With ``rows`` covering every
    request this is exactly :func:`optimal_routing`.
    """
    model = model or instance.config.latency_model
    rows = np.asarray(rows, dtype=np.int64)
    a = np.array(assignment, dtype=np.int64, copy=True)
    if rows.size:
        hosts = _host_lists(instance, placement)
        if model == "star":
            _star_assign(instance, hosts, instance.compute_ext, a, rows=rows)
        else:
            _chain_assign_batch(instance, hosts, instance.compute_ext, a, rows=rows)
    return Routing(instance, a)


def load_aware_routing(
    instance: ProblemInstance,
    placement: Placement,
    congestion_weight: float = 1.0,
    model: Optional[str] = None,
) -> Routing:
    """Queue-aware routing: optimal per request against a load-inflated
    compute model.

    The analytic latency model (Eq. 2) prices processing at the raw rate
    ``q/c`` regardless of how many requests share a server; under real
    contention (the DES cluster, paper §V.C) concentrating traffic on
    one fast node queues.  This engine routes requests *sequentially*,
    tracking the compute load (GFLOP) already committed to each server
    and inflating each server's effective processing delay by
    ``1 + congestion_weight · load_k / c_k`` — a fluid M/G/1-style
    congestion proxy.  Requests are processed in descending compute
    demand so heavy chains claim capacity first.

    Each step routes through the shared :func:`_route_one` DP kernel;
    the sequential load updates make this the one engine that cannot be
    batched across requests.  With ``congestion_weight=0`` this reduces
    exactly to :func:`optimal_routing`.
    """
    if congestion_weight < 0:
        raise ValueError(
            f"congestion_weight must be non-negative, got {congestion_weight}"
        )
    model = model or instance.config.latency_model
    hosts = _host_lists(instance, placement)
    inv = instance.inv_rate
    base_comp = instance.compute_ext.copy()
    q = instance.service_compute
    H, L = instance.n_requests, instance.max_chain
    a = np.full((H, L), -1, dtype=np.int64)

    load = np.zeros(base_comp.size)
    order = sorted(
        range(H),
        key=lambda h: -float(q[list(instance.requests[h].chain)].sum()),
    )
    for h in order:
        req = instance.requests[h]
        # effective rates under current committed load
        eff = base_comp / (1.0 + congestion_weight * load / base_comp)
        nodes = _route_one(instance, req, hosts, inv, eff, model)
        a[h, : nodes.size] = nodes
        for j, svc in enumerate(req.chain):
            load[nodes[j]] += q[svc]
    return Routing(instance, a)


def _route_one(instance, req, hosts, inv, comp, model) -> np.ndarray:
    """Single-request DP reference kernel.

    The batched engines must stay result-identical to this function; the
    property suite (``tests/test_property_routing_batch.py``) enforces
    the equivalence.  :func:`load_aware_routing` calls it directly.
    """
    q = instance.service_compute
    home = req.home
    if model == "star":
        nodes = np.empty(req.length, dtype=np.int64)
        inflow = [req.data_in, *req.edge_data]
        for j, svc in enumerate(req.chain):
            cand = hosts[svc]
            cost = inflow[j] * inv[home, cand] + q[svc] / comp[cand]
            if j == req.length - 1:
                cost = cost + req.data_out * inv[cand, home]
            nodes[j] = cand[int(np.argmin(cost))]
        return nodes

    cand0 = hosts[req.chain[0]]
    cost = req.data_in * inv[home, cand0] + q[req.chain[0]] / comp[cand0]
    back: list[np.ndarray] = []
    prev_cand = cand0
    for j in range(1, req.length):
        svc = req.chain[j]
        cand = hosts[svc]
        trans = (
            cost[:, None]
            + req.edge_data[j - 1] * inv[np.ix_(prev_cand, cand)]
            + (q[svc] / comp[cand])[None, :]
        )
        argmin = trans.argmin(axis=0)
        back.append(argmin)
        cost = trans[argmin, np.arange(cand.size)]
        prev_cand = cand
    cost = cost + req.data_out * inv[prev_cand, home]
    nodes = np.empty(req.length, dtype=np.int64)
    idx = int(np.argmin(cost))
    nodes[-1] = prev_cand[idx]
    for j in range(req.length - 1, 0, -1):
        idx = int(back[j - 1][idx])
        nodes[j - 1] = hosts[req.chain[j - 1]][idx]
    return nodes


def greedy_routing(
    instance: ProblemInstance,
    placement: Placement,
) -> Routing:
    """Paper-style reliance routing: max channel speed from home.

    Each chain position independently selects the hosting node ``v_q``
    maximizing ``b(l'_{f(u_h), q})`` — i.e. minimizing the transfer
    coefficient ``inv_rate[home, q]`` — with ties broken by higher
    compute power, and the home node itself always preferred (local
    service has infinite channel speed).

    The pick depends only on ``(service, home)``, so a single masked
    argmin builds the full best-host table and the per-request loop
    disappears entirely.
    """
    inst = instance
    hosts = _host_lists(inst, placement)
    pad, valid = _padded_hosts(hosts)  # (S, Hmax)
    inv = inst.inv_rate
    comp = inst.compute_ext
    # key[f, s, c]: transfer coefficient home f → candidate c of service s,
    # compute tie-break folded in; one argmin gives the whole table.
    key = inv[: inst.n_servers, :][:, pad] - 1e-12 * comp[pad][None, :, :]
    key = np.where(valid[None, :, :], key, np.inf)
    pick = np.argmin(key, axis=2)  # (N, S)
    best = pad[np.arange(inst.n_services)[None, :], pick]  # (N, S) node table

    H, L = inst.n_requests, inst.max_chain
    a = np.full((H, L), -1, dtype=np.int64)
    mask = inst.chain_mask
    chain_safe = np.where(mask, inst.chain_matrix, 0)
    assigned = best[inst.homes[:, None], chain_safe]
    a[mask] = assigned[mask]
    return Routing(inst, a)
