"""Edge-network topology generators matching the paper's settings (§V.A).

The evaluation places base stations "near the National Stadium, Beijing"
with edge servers drawing computing power from [5, 20] GFLOPs, storage
from [4, 8] units and link bandwidths from [20, 80] GB/s.  The main
generator, :func:`stadium_topology`, samples coordinates around the
stadium footprint and connects geographically close stations, then adds
a spanning backbone so the network is always connected.  Additional
regular topologies (ring, grid, line, star) and the classic Waxman
random graph are provided for tests and ablations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.network.topology import EdgeNetwork, EdgeServer, Link
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability

#: Approximate planar extent (km) of the area around the National Stadium
#: used for base-station placement.  Purely a coordinate scale.
STADIUM_EXTENT_KM = 4.0

#: Paper §V.A parameter ranges.
COMPUTE_RANGE = (5.0, 20.0)  # GFLOP/s
STORAGE_RANGE = (4.0, 8.0)  # storage units
BANDWIDTH_RANGE = (20.0, 80.0)  # GB/s


def _sample_servers(
    n: int,
    positions: np.ndarray,
    rng: np.random.Generator,
    compute_range: tuple[float, float],
    storage_range: tuple[float, float],
) -> list[EdgeServer]:
    compute = rng.uniform(*compute_range, size=n)
    storage = rng.uniform(*storage_range, size=n)
    return [
        EdgeServer(
            index=k,
            compute=float(compute[k]),
            storage=float(storage[k]),
            position=(float(positions[k, 0]), float(positions[k, 1])),
            name=f"bs{k}",
        )
        for k in range(n)
    ]


def _link(
    u: int,
    v: int,
    rng: np.random.Generator,
    bandwidth_range: tuple[float, float],
    distance: float = 1.0,
) -> Link:
    """Sample one link; channel gain decays with distance (path loss)."""
    bandwidth = float(rng.uniform(*bandwidth_range))
    # Free-space-like path loss with exponent 2, clamped so that even the
    # longest in-extent link keeps a usable SNR.
    gain = float(1.0 / max(distance, 0.25) ** 2)
    return Link(u=u, v=v, bandwidth=bandwidth, gain=gain, power=4.0, noise=1.0)


def _ensure_connected(
    n: int,
    edges: set[tuple[int, int]],
    positions: np.ndarray,
) -> set[tuple[int, int]]:
    """Add minimum-distance edges until the edge set forms one component."""
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for u, v in edges:
        union(u, v)
    # Repeatedly connect the two closest nodes in different components.
    while len({find(i) for i in range(n)}) > 1:
        best: Optional[tuple[float, int, int]] = None
        for i in range(n):
            for j in range(i + 1, n):
                if find(i) == find(j):
                    continue
                d = float(np.hypot(*(positions[i] - positions[j])))
                if best is None or d < best[0]:
                    best = (d, i, j)
        assert best is not None
        _, i, j = best
        edges.add((min(i, j), max(i, j)))
        union(i, j)
    return edges


def random_geometric_topology(
    n: int,
    radius: float,
    seed: SeedLike = None,
    extent: float = STADIUM_EXTENT_KM,
    compute_range: tuple[float, float] = COMPUTE_RANGE,
    storage_range: tuple[float, float] = STORAGE_RANGE,
    bandwidth_range: tuple[float, float] = BANDWIDTH_RANGE,
) -> EdgeNetwork:
    """Random geometric graph on an ``extent × extent`` square.

    Nodes within ``radius`` of each other are linked; a minimum spanning
    set of extra links guarantees connectivity.
    """
    check_positive("n", n)
    check_positive("radius", radius)
    rng = as_generator(seed)
    positions = rng.uniform(0.0, extent, size=(n, 2))
    diffs = positions[:, None, :] - positions[None, :, :]
    dist = np.hypot(diffs[..., 0], diffs[..., 1])
    edges = {
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if dist[i, j] <= radius
    }
    edges = _ensure_connected(n, edges, positions)
    servers = _sample_servers(n, positions, rng, compute_range, storage_range)
    links = [
        _link(u, v, rng, bandwidth_range, distance=float(dist[u, v]))
        for u, v in sorted(edges)
    ]
    return EdgeNetwork(servers, links)


def stadium_topology(
    n: int,
    seed: SeedLike = None,
    density: float = 0.45,
    compute_range: tuple[float, float] = COMPUTE_RANGE,
    storage_range: tuple[float, float] = STORAGE_RANGE,
    bandwidth_range: tuple[float, float] = BANDWIDTH_RANGE,
) -> EdgeNetwork:
    """Base stations around the National Stadium footprint (paper §V.A).

    Stations cluster densely near the stadium center and thin out with
    distance (radial Gaussian), mimicking urban base-station deployment.
    ``density`` scales the connection radius relative to the extent.
    """
    check_positive("n", n)
    check_probability("density", density)
    rng = as_generator(seed)
    center = np.array([STADIUM_EXTENT_KM / 2.0, STADIUM_EXTENT_KM / 2.0])
    radial = np.abs(rng.normal(0.0, STADIUM_EXTENT_KM / 4.0, size=n))
    angle = rng.uniform(0.0, 2.0 * np.pi, size=n)
    positions = center + np.stack(
        [radial * np.cos(angle), radial * np.sin(angle)], axis=1
    )
    positions = np.clip(positions, 0.0, STADIUM_EXTENT_KM)
    diffs = positions[:, None, :] - positions[None, :, :]
    dist = np.hypot(diffs[..., 0], diffs[..., 1])
    radius = density * STADIUM_EXTENT_KM
    edges = {
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if dist[i, j] <= radius
    }
    edges = _ensure_connected(n, edges, positions)
    servers = _sample_servers(n, positions, rng, compute_range, storage_range)
    links = [
        _link(u, v, rng, bandwidth_range, distance=float(dist[u, v]))
        for u, v in sorted(edges)
    ]
    return EdgeNetwork(servers, links)


def waxman_topology(
    n: int,
    seed: SeedLike = None,
    alpha: float = 0.6,
    beta: float = 0.4,
    extent: float = STADIUM_EXTENT_KM,
    compute_range: tuple[float, float] = COMPUTE_RANGE,
    storage_range: tuple[float, float] = STORAGE_RANGE,
    bandwidth_range: tuple[float, float] = BANDWIDTH_RANGE,
) -> EdgeNetwork:
    """Waxman random graph: P(link) = α·exp(−d / (β·D_max))."""
    check_positive("n", n)
    check_probability("alpha", alpha)
    check_probability("beta", beta)
    rng = as_generator(seed)
    positions = rng.uniform(0.0, extent, size=(n, 2))
    diffs = positions[:, None, :] - positions[None, :, :]
    dist = np.hypot(diffs[..., 0], diffs[..., 1])
    dmax = float(dist.max()) or 1.0
    edges = set()
    for i in range(n):
        for j in range(i + 1, n):
            p = alpha * np.exp(-dist[i, j] / (beta * dmax))
            if rng.random() < p:
                edges.add((i, j))
    edges = _ensure_connected(n, edges, positions)
    servers = _sample_servers(n, positions, rng, compute_range, storage_range)
    links = [
        _link(u, v, rng, bandwidth_range, distance=float(dist[u, v]))
        for u, v in sorted(edges)
    ]
    return EdgeNetwork(servers, links)


def _regular(
    n: int,
    edges: list[tuple[int, int]],
    positions: np.ndarray,
    seed: SeedLike,
    compute_range: tuple[float, float],
    storage_range: tuple[float, float],
    bandwidth_range: tuple[float, float],
) -> EdgeNetwork:
    rng = as_generator(seed)
    servers = _sample_servers(n, positions, rng, compute_range, storage_range)
    links = [
        _link(
            u,
            v,
            rng,
            bandwidth_range,
            distance=float(np.hypot(*(positions[u] - positions[v]))),
        )
        for u, v in edges
    ]
    return EdgeNetwork(servers, links)


def ring_topology(
    n: int,
    seed: SeedLike = None,
    compute_range: tuple[float, float] = COMPUTE_RANGE,
    storage_range: tuple[float, float] = STORAGE_RANGE,
    bandwidth_range: tuple[float, float] = BANDWIDTH_RANGE,
) -> EdgeNetwork:
    """Cycle of ``n`` nodes (n >= 3)."""
    if n < 3:
        raise ValueError(f"ring needs at least 3 nodes, got {n}")
    angle = 2.0 * np.pi * np.arange(n) / n
    positions = np.stack([np.cos(angle), np.sin(angle)], axis=1) + 1.0
    edges = [(k, (k + 1) % n) for k in range(n)]
    edges = [(min(u, v), max(u, v)) for u, v in edges]
    return _regular(
        n, sorted(set(edges)), positions, seed, compute_range, storage_range, bandwidth_range
    )


def line_topology(
    n: int,
    seed: SeedLike = None,
    compute_range: tuple[float, float] = COMPUTE_RANGE,
    storage_range: tuple[float, float] = STORAGE_RANGE,
    bandwidth_range: tuple[float, float] = BANDWIDTH_RANGE,
) -> EdgeNetwork:
    """Path graph of ``n`` nodes."""
    check_positive("n", n)
    positions = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)
    edges = [(k, k + 1) for k in range(n - 1)]
    return _regular(
        n, edges, positions, seed, compute_range, storage_range, bandwidth_range
    )


def star_topology(
    n: int,
    seed: SeedLike = None,
    compute_range: tuple[float, float] = COMPUTE_RANGE,
    storage_range: tuple[float, float] = STORAGE_RANGE,
    bandwidth_range: tuple[float, float] = BANDWIDTH_RANGE,
) -> EdgeNetwork:
    """Hub-and-spoke graph; node 0 is the hub."""
    if n < 2:
        raise ValueError(f"star needs at least 2 nodes, got {n}")
    angle = 2.0 * np.pi * np.arange(n) / max(n - 1, 1)
    positions = np.stack([np.cos(angle), np.sin(angle)], axis=1) + 1.0
    positions[0] = (1.0, 1.0)
    edges = [(0, k) for k in range(1, n)]
    return _regular(
        n, edges, positions, seed, compute_range, storage_range, bandwidth_range
    )


def grid_topology(
    rows: int,
    cols: int,
    seed: SeedLike = None,
    compute_range: tuple[float, float] = COMPUTE_RANGE,
    storage_range: tuple[float, float] = STORAGE_RANGE,
    bandwidth_range: tuple[float, float] = BANDWIDTH_RANGE,
) -> EdgeNetwork:
    """``rows × cols`` 4-neighbor lattice."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    n = rows * cols
    positions = np.array(
        [(r, c) for r in range(rows) for c in range(cols)], dtype=float
    )
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            k = r * cols + c
            if c + 1 < cols:
                edges.append((k, k + 1))
            if r + 1 < rows:
                edges.append((k, k + cols))
    return _regular(
        n, edges, positions, seed, compute_range, storage_range, bandwidth_range
    )
