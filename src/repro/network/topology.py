"""Edge network topology model (paper §III.A).

An :class:`EdgeNetwork` is a weighted undirected graph ``G(V, L)`` whose
vertices are :class:`EdgeServer` objects and whose links carry a raw
bandwidth ``B(l)`` plus the physical-layer parameters (transmission power
``γ``, channel gain ``g`` and noise power ``N``) that determine the
effective Shannon transmission rate

    b(l) = B(l) · log2(1 + γ·g / N)        (paper §III.C)

The network exposes dense numpy matrices for the quantities the
algorithms consume in hot loops (direct rates, adjacency) and lazily
builds a :class:`repro.network.paths.PathTable` for all-pairs routing
quantities (hop counts, virtual-link rates, path reconstruction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.utils.validation import check_index, check_positive


@dataclass(frozen=True)
class EdgeServer:
    """A single edge server ``v_k``.

    Attributes
    ----------
    index:
        Position in the network's server list (the ``k`` in ``v_k``).
    compute:
        Computing capability ``c(v_k)`` in GFLOP/s.
    storage:
        Storage capacity ``Φ(v_k)`` in abstract storage units.
    position:
        Planar coordinates used by topology generators and the mobility
        model; purely geometric, never consumed by the optimizer itself.
    name:
        Human-readable label.
    """

    index: int
    compute: float
    storage: float
    position: tuple[float, float] = (0.0, 0.0)
    name: str = ""

    def __post_init__(self) -> None:
        check_positive("compute", self.compute)
        check_positive("storage", self.storage)

    @property
    def label(self) -> str:
        return self.name or f"v{self.index}"


@dataclass(frozen=True)
class Link:
    """An undirected physical link ``l_{k,k'}`` with Shannon-rate parameters."""

    u: int
    v: int
    bandwidth: float  # B(l) in GB/s
    gain: float = 1.0  # channel gain g
    power: float = 1.0  # transmission power γ
    noise: float = 1.0  # noise power N

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_positive("gain", self.gain)
        check_positive("power", self.power)
        check_positive("noise", self.noise)
        if self.u == self.v:
            raise ValueError(f"self-loop link on node {self.u}")

    @property
    def rate(self) -> float:
        """Effective transmission rate ``b(l) = B·log2(1 + γ·g/N)`` (GB/s)."""
        return self.bandwidth * np.log2(1.0 + self.power * self.gain / self.noise)

    @property
    def endpoints(self) -> tuple[int, int]:
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


class EdgeNetwork:
    """Substrate edge network ``G(V, L)``.

    Parameters
    ----------
    servers:
        Edge servers; their ``index`` attributes must equal their position.
    links:
        Physical links between server indices.  Duplicate (u, v) pairs are
        rejected; the graph is undirected.

    Notes
    -----
    The class is immutable after construction — algorithms never mutate
    the substrate, only placements.  Derived all-pairs quantities are
    computed once and cached (see :attr:`paths`).
    """

    def __init__(self, servers: Sequence[EdgeServer], links: Iterable[Link]):
        self.servers: tuple[EdgeServer, ...] = tuple(servers)
        if not self.servers:
            raise ValueError("network must contain at least one server")
        for pos, server in enumerate(self.servers):
            if server.index != pos:
                raise ValueError(
                    f"server at position {pos} has index {server.index}; "
                    "indices must be consecutive from 0"
                )
        n = len(self.servers)
        self.links: tuple[Link, ...] = tuple(links)

        rate = np.zeros((n, n), dtype=np.float64)
        bandwidth = np.zeros((n, n), dtype=np.float64)
        seen: set[tuple[int, int]] = set()
        for link in self.links:
            check_index("link endpoint", link.u, n)
            check_index("link endpoint", link.v, n)
            key = link.endpoints
            if key in seen:
                raise ValueError(f"duplicate link between {key[0]} and {key[1]}")
            seen.add(key)
            r = link.rate
            rate[link.u, link.v] = rate[link.v, link.u] = r
            bandwidth[link.u, link.v] = bandwidth[link.v, link.u] = link.bandwidth
        self._rate = rate
        self._bandwidth = bandwidth
        self._paths = None  # lazily built PathTable

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of edge servers ``|V|``."""
        return len(self.servers)

    @property
    def rate_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` matrix of direct-link Shannon rates ``b(l)``.

        Zero entries mean "no direct link".  Read-only view.
        """
        view = self._rate.view()
        view.flags.writeable = False
        return view

    @property
    def bandwidth_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` matrix of raw bandwidths ``B(l)``; read-only."""
        view = self._bandwidth.view()
        view.flags.writeable = False
        return view

    @property
    def compute(self) -> np.ndarray:
        """Vector of server computing capabilities ``c(v_k)``."""
        return np.array([s.compute for s in self.servers], dtype=np.float64)

    @property
    def storage(self) -> np.ndarray:
        """Vector of server storage capacities ``Φ(v_k)``."""
        return np.array([s.storage for s in self.servers], dtype=np.float64)

    @property
    def positions(self) -> np.ndarray:
        """``(n, 2)`` array of server coordinates."""
        return np.array([s.position for s in self.servers], dtype=np.float64)

    def neighbors(self, k: int) -> np.ndarray:
        """Indices of servers directly linked to ``v_k``."""
        check_index("k", k, self.n)
        return np.nonzero(self._rate[k] > 0.0)[0]

    def degree(self, k: int) -> int:
        """Number of direct connections ``H(v_k)`` (Theorem 1's quantity)."""
        return int(np.count_nonzero(self._rate[k] > 0.0))

    @property
    def degrees(self) -> np.ndarray:
        """Vector of node degrees."""
        return np.count_nonzero(self._rate > 0.0, axis=1)

    # ------------------------------------------------------------------
    # derived routing quantities
    # ------------------------------------------------------------------
    @property
    def paths(self):
        """All-pairs routing table (lazily constructed, cached)."""
        if self._paths is None:
            from repro.network.paths import PathTable

            self._paths = PathTable.from_network(self)
        return self._paths

    @property
    def is_connected(self) -> bool:
        """Whether every server can reach every other server."""
        return bool(np.all(np.isfinite(self.paths.hops + np.eye(self.n))))

    def transfer_time(self, src: int, dst: int, data: float) -> float:
        """Seconds to move ``data`` GB from ``src`` to ``dst`` along ``π*``.

        Zero when ``src == dst`` (paper's indicator ``1_[v_k != v_s]``).
        """
        if data < 0:
            raise ValueError(f"data must be non-negative, got {data}")
        return float(data * self.paths.inv_rate[src, dst])

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeNetwork(n={self.n}, links={len(self.links)})"
