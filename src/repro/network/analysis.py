"""Topology analysis utilities.

Descriptive statistics of an :class:`repro.network.topology.EdgeNetwork`
used by the experiment report and by users validating custom topologies
before provisioning on them:

* :func:`topology_summary` — node/link counts, degree stats, hop
  diameter, mean virtual-link rate;
* :func:`link_utilization` — how much data a given routing pushes over
  each *physical* link (congestion hot spots);
* :func:`bottleneck_links` — the links carrying the most traffic;
* :func:`reachability_matrix` — boolean all-pairs connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.network.topology import EdgeNetwork

if TYPE_CHECKING:  # avoid the circular model → network import at runtime
    from repro.model.instance import ProblemInstance
    from repro.model.placement import Routing


@dataclass(frozen=True)
class TopologySummary:
    """Headline statistics of one edge network."""

    n_servers: int
    n_links: int
    min_degree: int
    max_degree: int
    mean_degree: float
    diameter_hops: int
    mean_hops: float
    mean_virtual_rate: float
    min_virtual_rate: float
    total_compute: float
    total_storage: float

    def as_dict(self) -> dict:
        return {
            "n_servers": self.n_servers,
            "n_links": self.n_links,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "diameter_hops": self.diameter_hops,
            "mean_hops": self.mean_hops,
            "mean_virtual_rate": self.mean_virtual_rate,
            "min_virtual_rate": self.min_virtual_rate,
            "total_compute": self.total_compute,
            "total_storage": self.total_storage,
        }


def topology_summary(network: EdgeNetwork) -> TopologySummary:
    """Compute :class:`TopologySummary` (requires a connected network for
    finite diameter; unreachable pairs are excluded from the means)."""
    pt = network.paths
    n = network.n
    off_diag = ~np.eye(n, dtype=bool)
    hops = pt.hops[off_diag]
    finite = np.isfinite(hops)
    vr = pt.virtual_rate_matrix[off_diag]
    vr_finite = vr[np.isfinite(vr) & (vr > 0)]
    degrees = network.degrees
    return TopologySummary(
        n_servers=n,
        n_links=len(network.links),
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        mean_degree=float(degrees.mean()),
        diameter_hops=int(hops[finite].max()) if finite.any() else 0,
        mean_hops=float(hops[finite].mean()) if finite.any() else 0.0,
        mean_virtual_rate=float(vr_finite.mean()) if vr_finite.size else 0.0,
        min_virtual_rate=float(vr_finite.min()) if vr_finite.size else 0.0,
        total_compute=float(network.compute.sum()),
        total_storage=float(network.storage.sum()),
    )


def link_utilization(
    instance: "ProblemInstance", routing: "Routing"
) -> dict[tuple[int, int], float]:
    """Data volume (GB) each physical link carries under ``routing``.

    Walks every request's transfers (upload, inter-service, return) along
    the hop-shortest paths and accumulates per-link volume.  Cloud legs
    are skipped (they leave the edge network).  Keys are normalized
    ``(min, max)`` endpoint pairs.
    """
    pt = instance.network.paths
    cloud = instance.cloud
    usage: dict[tuple[int, int], float] = {}

    def add(src: int, dst: int, volume: float) -> None:
        if volume <= 0 or src == dst or src == cloud or dst == cloud:
            return
        route = pt.path(src, dst)
        for a, b in zip(route, route[1:]):
            key = (a, b) if a < b else (b, a)
            usage[key] = usage.get(key, 0.0) + volume

    for h, req in enumerate(instance.requests):
        nodes = routing.nodes_for(h)
        add(req.home, int(nodes[0]), req.data_in)
        for j, volume in enumerate(req.edge_data):
            add(int(nodes[j]), int(nodes[j + 1]), volume)
        add(int(nodes[-1]), req.home, req.data_out)
    return usage


def bottleneck_links(
    instance: "ProblemInstance", routing: "Routing", top: int = 5
) -> list[tuple[tuple[int, int], float]]:
    """The ``top`` most-utilized physical links (descending volume)."""
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    usage = link_utilization(instance, routing)
    ranked = sorted(usage.items(), key=lambda kv: -kv[1])
    return ranked[:top]


def reachability_matrix(network: EdgeNetwork) -> np.ndarray:
    """Boolean all-pairs reachability (diagonal True)."""
    return np.isfinite(network.paths.hops)
