"""All-pairs routing paths and virtual-link channel speeds (paper §IV.A).

The paper routes indirect traffic over the hop-shortest path ``π*(v_k, v_q)``
(ties broken by transfer time) and models the resulting *virtual link*
``l'_{k,q}`` with channel speed equal to the harmonic combination of the
direct links on the path:

    B(l'_{k,q}) = 1 / Σ_{l ∈ π*(k,q)} 1/b(l)

so that moving ``r`` GB across the virtual link takes ``r / B(l')`` seconds
— exactly the sum of per-hop transfer times.  :class:`PathTable`
precomputes, for every ordered pair:

* ``hops``      — number of links on the chosen path (``inf`` if unreachable)
* ``inv_rate``  — ``Σ 1/b(l)`` along the path (0 on the diagonal); the
  reciprocal is the virtual rate ``B(l')``
* ``next_hop``  — successor matrix for explicit path reconstruction

The table is built with a lexicographic Floyd–Warshall over
``(hops, inv_rate)``, vectorized over matrix rows.  For the network sizes
the paper uses (≤ 30 edge servers; we generate up to a few hundred) this
is far below a millisecond-per-node budget and keeps the implementation
dependency-free and easily property-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.utils.validation import check_index

_INF = np.inf


@dataclass(frozen=True)
class PathTable:
    """Immutable all-pairs routing table for an :class:`EdgeNetwork`."""

    hops: np.ndarray  # (n, n) float; inf = unreachable; 0 on diagonal
    inv_rate: np.ndarray  # (n, n) float; Σ 1/b along π*; 0 on diagonal
    next_hop: np.ndarray  # (n, n) int; -1 = none/self

    @classmethod
    def from_network(cls, network) -> "PathTable":
        return cls.from_rate_matrix(np.asarray(network.rate_matrix, dtype=np.float64))

    @classmethod
    def from_rate_matrix(cls, rate: np.ndarray) -> "PathTable":
        """Build the table from a symmetric direct-rate matrix.

        ``rate[i, j] > 0`` iff a direct link exists with Shannon rate
        ``b(l_{i,j})``.
        """
        rate = np.asarray(rate, dtype=np.float64)
        if rate.ndim != 2 or rate.shape[0] != rate.shape[1]:
            raise ValueError(f"rate matrix must be square, got shape {rate.shape}")
        if not np.allclose(rate, rate.T):
            raise ValueError("rate matrix must be symmetric (undirected network)")
        n = rate.shape[0]

        hops = np.full((n, n), _INF)
        inv = np.full((n, n), _INF)
        nxt = np.full((n, n), -1, dtype=np.int64)

        direct = rate > 0.0
        hops[direct] = 1.0
        with np.errstate(divide="ignore"):
            inv[direct] = 1.0 / rate[direct]
        np.fill_diagonal(hops, 0.0)
        np.fill_diagonal(inv, 0.0)
        src, dst = np.nonzero(direct)
        nxt[src, dst] = dst

        # Lexicographic Floyd–Warshall on (hops, inv_rate): prefer fewer
        # hops; among equal hop counts prefer smaller total transfer time.
        for k in range(n):
            hk = hops[:, k][:, None] + hops[k, :][None, :]
            ik = inv[:, k][:, None] + inv[k, :][None, :]
            better = (hk < hops) | ((hk == hops) & (ik < inv - 1e-15))
            if not better.any():
                continue
            hops = np.where(better, hk, hops)
            inv = np.where(better, ik, inv)
            nxt = np.where(better, nxt[:, k][:, None], nxt)

        # Unreachable pairs keep inf hops; normalize inv there too.
        unreachable = ~np.isfinite(hops)
        inv[unreachable] = _INF
        return cls(hops=_readonly(hops), inv_rate=_readonly(inv), next_hop=_readonly(nxt))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.hops.shape[0]

    def virtual_rate(self, k: int, q: int) -> float:
        """Virtual-link channel speed ``B(l'_{k,q})`` (GB/s).

        Infinite on the diagonal (local transfer is free); zero when
        unreachable.
        """
        check_index("k", k, self.n)
        check_index("q", q, self.n)
        inv = self.inv_rate[k, q]
        if inv == 0.0:
            return _INF
        if not np.isfinite(inv):
            return 0.0
        return float(1.0 / inv)

    @cached_property
    def virtual_rate_matrix(self) -> np.ndarray:
        """Dense matrix of ``B(l')`` values (inf diagonal, 0 unreachable).

        Built once per table and memoized: ``cached_property`` stores the
        result straight into the instance ``__dict__``, which bypasses
        the frozen dataclass's ``__setattr__`` guard without weakening
        it.  The cached array is marked read-only so shared access stays
        as safe as the rebuilt-per-call version was.
        """
        return _readonly(invert_inverse_rates(self.inv_rate))

    def path(self, src: int, dst: int) -> list[int]:
        """Reconstruct the chosen route ``π*(src, dst)`` as a node list.

        Returns ``[src]`` when ``src == dst`` and raises ``ValueError``
        when the pair is disconnected.
        """
        check_index("src", src, self.n)
        check_index("dst", dst, self.n)
        if src == dst:
            return [src]
        if not np.isfinite(self.hops[src, dst]):
            raise ValueError(f"no path from {src} to {dst}")
        route = [src]
        node = src
        # hops bound guards against a corrupted successor matrix looping
        for _ in range(int(self.hops[src, dst])):
            node = int(self.next_hop[node, dst])
            route.append(node)
            if node == dst:
                return route
        raise RuntimeError(
            f"path reconstruction from {src} to {dst} exceeded hop bound"
        )  # pragma: no cover - defensive

    def transfer_time(self, src: int, dst: int, data: float) -> float:
        """Seconds to move ``data`` GB from ``src`` to ``dst``."""
        check_index("src", src, self.n)
        check_index("dst", dst, self.n)
        if data < 0:
            raise ValueError(f"data must be non-negative, got {data}")
        return float(data * self.inv_rate[src, dst])


def invert_inverse_rates(inv_rate: np.ndarray) -> np.ndarray:
    """Elementwise channel speed ``B(l') = 1 / inv_rate``.

    Shared inversion kernel of :attr:`PathTable.virtual_rate_matrix`
    and :func:`communication_intensity`: zero inverse rates (local
    transfers) invert to ``inf``, non-finite inverse rates (unreachable
    pairs) map to ``0``.  Callers wanting the local-as-zero convention
    additionally zero the remaining infinities.
    """
    inv_rate = np.asarray(inv_rate, dtype=np.float64)
    with np.errstate(divide="ignore"):
        vr = 1.0 / inv_rate
    vr[~np.isfinite(inv_rate)] = 0.0
    return vr


def communication_intensity(inv_rate: np.ndarray) -> np.ndarray:
    """Per-node communication intensity ``χ_{v_k} = Σ_{q≠k} B(l'_{k,q})``.

    Used by Alg. 1 (line 12) to order candidate-node validation: nodes
    with *lower* intensity are checked first since they are more likely
    to satisfy ``Δ^η < 0``.  Unreachable pairs contribute zero.
    """
    vr = invert_inverse_rates(inv_rate)
    vr[~np.isfinite(vr)] = 0.0  # local pairs (inv=0) contribute zero
    np.fill_diagonal(vr, 0.0)
    return vr.sum(axis=1)


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr
