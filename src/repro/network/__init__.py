"""Edge-network substrate: topology, link rates, shortest paths.

Implements the system model of paper §III.A: a weighted undirected graph
``G(V, L)`` of edge servers with computing capability ``c(v_k)`` (GFLOP/s),
storage ``Φ(v_k)``, and links whose transmission rate follows the Shannon
capacity formula ``b(l) = B(l)·log2(1 + γ·g/N)``.  Indirect node pairs
communicate over hop-shortest routing paths ``π*``; the *virtual link*
between them has channel speed equal to the harmonic mean of the direct
link rates along the path, ``B(l'_{k,q}) = 1 / Σ 1/b(l)`` (paper §IV.A).
"""

from repro.network.topology import EdgeServer, Link, EdgeNetwork
from repro.network.paths import (
    PathTable,
    communication_intensity,
    invert_inverse_rates,
)
from repro.network.analysis import (
    TopologySummary,
    topology_summary,
    link_utilization,
    bottleneck_links,
    reachability_matrix,
)
from repro.network.generators import (
    stadium_topology,
    random_geometric_topology,
    ring_topology,
    grid_topology,
    line_topology,
    star_topology,
    waxman_topology,
)

__all__ = [
    "EdgeServer",
    "Link",
    "EdgeNetwork",
    "PathTable",
    "communication_intensity",
    "invert_inverse_rates",
    "TopologySummary",
    "topology_summary",
    "link_utilization",
    "bottleneck_links",
    "reachability_matrix",
    "stadium_topology",
    "random_geometric_topology",
    "ring_topology",
    "grid_topology",
    "line_topology",
    "star_topology",
    "waxman_topology",
]
