"""Baseline algorithms from the paper's evaluation (§V.A).

* :class:`RandomProvisioning` (RP) — random placement and routing under
  the budget/storage constraints;
* :class:`JointDeploymentRouting` (JDR) — Peng et al. [11]: single-user
  microservices deployed near their user, multi-user microservices on
  high-capacity servers;
* :class:`GreedyCombineOG` (GC-OG) — greedy combine with objective
  gradient: starts from a full placement and repeatedly removes the
  instance whose removal most decreases the true objective;
* :class:`OptimalSolver` (OPT) — exact ILP via
  :mod:`repro.ilp` (the Gurobi stand-in).

All solvers share the ``solve(instance) -> BaselineResult`` protocol of
:mod:`repro.baselines.base`, matching :class:`repro.core.socl.SoCL`.
"""

from repro.baselines.base import BaselineResult, Solver
from repro.baselines.random_provisioning import RandomProvisioning
from repro.baselines.jdr import JointDeploymentRouting
from repro.baselines.gcog import GreedyCombineOG
from repro.baselines.optimal import OptimalSolver
from repro.baselines.kube import KubeScheduler
from repro.baselines.autoscaler import ROIAutoscaler

__all__ = [
    "BaselineResult",
    "Solver",
    "RandomProvisioning",
    "JointDeploymentRouting",
    "GreedyCombineOG",
    "OptimalSolver",
    "KubeScheduler",
    "ROIAutoscaler",
]
