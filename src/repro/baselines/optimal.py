"""OPT: exact ILP solver wrapper (the paper's Gurobi baseline).

Wraps :func:`repro.ilp.scipy_backend.solve_milp` behind the uniform
solver protocol.  Raises on infeasible instances (the experiment
scenarios are constructed feasible); a time limit can be set for the
runtime-explosion experiments (Figs. 2 and 7), in which case the HiGHS
incumbent is reported with ``extra["status"] == "timeout"``.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import BaselineResult, finalize
from repro.ilp.scipy_backend import solve_milp
from repro.model.instance import ProblemInstance


class OptimalSolver:
    """Exact ILP baseline ("OPT" in the paper's tables)."""

    name = "OPT"

    def __init__(
        self,
        time_limit: Optional[float] = None,
        mip_rel_gap: float = 0.0,
        model: Optional[str] = None,
    ):
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap
        self.model = model

    def solve(self, instance: ProblemInstance) -> BaselineResult:
        res = solve_milp(
            instance,
            model=self.model,
            time_limit=self.time_limit,
            mip_rel_gap=self.mip_rel_gap,
        )
        if res.placement is None or res.routing is None:
            raise RuntimeError(
                f"exact solver returned no solution (status={res.status!r})"
            )
        return finalize(
            instance,
            res.placement,
            res.routing,
            res.runtime,
            extra={
                "status": res.status,
                "mip_gap": res.mip_gap,
                "n_variables": res.n_variables,
                "n_constraints": res.n_constraints,
                "solver_objective": res.objective,
            },
        )
