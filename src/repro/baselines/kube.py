"""Kubernetes-default-scheduler baseline (extension, not in the paper).

The paper's testbed runs on Kubernetes but all compared algorithms make
their own placement decisions.  For context we add what a stock K8s
scheduler would do with the same pods: filter nodes by resource fit,
then score by

* **LeastAllocated** — prefer nodes with the most free storage (the
  default bin-spreading behaviour), and
* **topology spread** — penalize putting replicas of the same service
  on one node,

with replica counts chosen by a simple horizontal-pod-autoscaler analog
(one replica per ``hpa_users_per_replica`` requesting users, capped by
the budget).  Routing is round-robin across ready replicas, as a plain
ClusterIP Service would balance.  It is demand-agnostic about *where*
users are — exactly the blindness SoCL's partitioning fixes — so it
lands between RP and JDR on the objective.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, finalize
from repro.model.instance import ProblemInstance
from repro.model.placement import Placement, Routing
from repro.utils.validation import check_positive
from repro.utils.timing import Stopwatch


class KubeScheduler:
    """K8s-style spread scheduler with an HPA-like replica policy."""

    name = "K8s"

    def __init__(self, hpa_users_per_replica: int = 20):
        check_positive("hpa_users_per_replica", hpa_users_per_replica)
        self.hpa_users_per_replica = int(hpa_users_per_replica)

    def _replicas(self, instance: ProblemInstance, service: int) -> int:
        demand = int(instance.demand_counts[service].sum())
        return max(1, int(np.ceil(demand / self.hpa_users_per_replica)))

    def solve(self, instance: ProblemInstance) -> BaselineResult:
        sw = Stopwatch()
        sw.start()
        phi = instance.service_storage
        kappa = instance.service_cost
        budget = instance.config.budget
        free = instance.server_storage.astype(np.float64).copy()
        x = Placement.empty(instance)
        spent = 0.0

        # schedule services by demand (heaviest deployments first)
        services = sorted(
            (int(i) for i in instance.requested_services),
            key=lambda s: -int(instance.demand_counts[s].sum()),
        )
        for svc in services:
            replicas = self._replicas(instance, svc)
            for _ in range(replicas):
                if spent + kappa[svc] > budget:
                    break
                # Filter: fits and not already hosting this service
                feasible = [
                    k
                    for k in range(instance.n_servers)
                    if free[k] >= phi[svc] and not x.has(svc, k)
                ]
                if not feasible:
                    break
                # Score: LeastAllocated (max free fraction)
                scores = [
                    free[k] / instance.server_storage[k] for k in feasible
                ]
                k = feasible[int(np.argmax(scores))]
                x.add(svc, k)
                free[k] -= phi[svc]
                spent += float(kappa[svc])
            if x.instance_count(svc) == 0 and spent + kappa[svc] <= budget:
                # mandatory single replica on the roomiest node; if even
                # that breaks the resource quota the pod stays Pending
                # and its traffic falls back to the cloud.
                k = int(np.argmax(free))
                if free[k] >= phi[svc]:
                    x.add(svc, k)
                    free[k] -= phi[svc]
                    spent += float(kappa[svc])

        # ClusterIP-style round-robin routing across replicas
        H, L = instance.n_requests, instance.max_chain
        a = np.full((H, L), -1, dtype=np.int64)
        rr: dict[int, int] = {}
        for h, req in enumerate(instance.requests):
            for j, svc in enumerate(req.chain):
                hosts = x.hosts(svc)
                if hosts.size == 0:
                    a[h, j] = instance.cloud
                    continue
                idx = rr.get(svc, 0)
                a[h, j] = int(hosts[idx % hosts.size])
                rr[svc] = idx + 1
        routing = Routing(instance, a)
        runtime = sw.stop()
        return finalize(instance, x, routing, runtime)
