"""Random Provisioning (RP) baseline.

The paper's weakest baseline: "random placement and routing strategy,
which led to highly unbalanced resource allocation and failed to
optimize both provisioning costs and latency".

Implementation: every requested service receives a uniformly random
number of instances (between 1 and its budget bound) on uniformly random
servers, subject to storage capacity and the global budget; each chain
position is then routed to a uniformly random hosting instance.  The
randomness is seeded for reproducibility.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineResult, finalize
from repro.model.instance import ProblemInstance
from repro.model.placement import Placement, Routing
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Stopwatch


class RandomProvisioning:
    """RP: random feasible placement, random routing."""

    name = "RP"

    def __init__(self, seed: SeedLike = None):
        self._seed = seed

    def solve(self, instance: ProblemInstance) -> BaselineResult:
        rng = as_generator(self._seed)
        sw = Stopwatch()
        sw.start()

        kappa = instance.service_cost
        phi = instance.service_storage
        capacity = instance.server_storage.copy()
        budget = instance.config.budget
        x = Placement.empty(instance)
        spent = 0.0

        # One mandatory instance per requested service (random feasible
        # server), then extra instances while budget/storage allow.
        services = [int(i) for i in instance.requested_services]
        rng.shuffle(services)
        for svc in services:
            order = rng.permutation(instance.n_servers)
            for k in order:
                if capacity[k] >= phi[svc] and spent + kappa[svc] <= budget:
                    x.add(svc, int(k))
                    capacity[k] -= phi[svc]
                    spent += kappa[svc]
                    break
            # If no server fits, the service falls back to the cloud.

        # Random extras: keep adding until the budget is (nearly) used,
        # mirroring RP's tendency to exhaust the deployment budget.
        attempts = 4 * instance.n_services * instance.n_servers
        while attempts > 0:
            attempts -= 1
            svc = int(rng.choice(services))
            k = int(rng.integers(0, instance.n_servers))
            if x.has(svc, k):
                continue
            if capacity[k] < phi[svc] or spent + kappa[svc] > budget:
                continue
            x.add(svc, k)
            capacity[k] -= phi[svc]
            spent += kappa[svc]

        # Random routing: uniform choice among hosts per position.
        a = np.full((instance.n_requests, instance.max_chain), -1, dtype=np.int64)
        for h, req in enumerate(instance.requests):
            for j, svc in enumerate(req.chain):
                hosts = x.hosts(svc)
                if hosts.size == 0:
                    a[h, j] = instance.cloud
                else:
                    a[h, j] = int(rng.choice(hosts))
        routing = Routing(instance, a)

        runtime = sw.stop()
        return finalize(instance, x, routing, runtime)
