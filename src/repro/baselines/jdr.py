"""Joint Deployment and Routing (JDR) baseline — Peng et al. [11].

As characterized in the paper's evaluation: "JDR attempted to optimize
latency by categorizing microservices into single-user and multi-user
groups, deploying the former close to user nodes and prioritizing the
latter on high-capacity servers.  However, by neglecting provisioning
costs, JDR caused resource redundancy that led to consistently high
objective values."

Implementation:

* **single-user microservices** (requested by exactly one user) are
  deployed on that user's home server (or its best-connected neighbor
  when storage is full);
* **multi-user microservices** are deployed greedily on servers in
  descending compute capacity, one instance per *demand cluster* — each
  distinct home server with demand gets the nearest high-capacity
  placement — until the budget runs out;
* routing is latency-greedy per request (each position to the
  highest-channel-speed instance), ignoring deployment cost entirely.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, finalize
from repro.model.instance import ProblemInstance
from repro.model.placement import Placement
from repro.model.routing import greedy_routing
from repro.utils.timing import Stopwatch


class JointDeploymentRouting:
    """JDR: latency-first deployment, cost-blind."""

    name = "JDR"

    def solve(self, instance: ProblemInstance) -> BaselineResult:
        sw = Stopwatch()
        sw.start()

        kappa = instance.service_cost
        phi = instance.service_storage
        capacity = instance.server_storage.copy()
        budget = instance.config.budget
        inv = instance.network.paths.inv_rate
        comp = instance.network.compute
        x = Placement.empty(instance)
        spent = 0.0

        def try_place(svc: int, preferred: list[int]) -> bool:
            nonlocal spent
            for k in preferred:
                if x.has(svc, k):
                    return True  # already served there
                if capacity[k] >= phi[svc] and spent + kappa[svc] <= budget:
                    x.add(svc, int(k))
                    capacity[k] -= phi[svc]
                    spent += kappa[svc]
                    return True
            return False

        counts = instance.demand_counts  # (S, N)
        single_user: list[int] = []
        multi_user: list[int] = []
        for svc in (int(i) for i in instance.requested_services):
            total = int(counts[svc].sum())
            (single_user if total == 1 else multi_user).append(svc)

        # Coverage pass: being latency-first, JDR never strands a service
        # — every requested service first gets one instance at its
        # demand-weighted best location.
        for svc in (int(i) for i in instance.requested_services):
            demand_nodes = np.nonzero(counts[svc] > 0)[0]
            weights = counts[svc, demand_nodes].astype(np.float64)
            score = (weights[:, None] * inv[demand_nodes, :]).sum(axis=0)
            preferred = sorted(range(instance.n_servers), key=lambda k: score[k])
            try_place(svc, preferred)

        # Single-user services: as close to the user as possible.
        for svc in single_user:
            home = int(np.nonzero(counts[svc] > 0)[0][0])
            preferred = [home] + sorted(
                (k for k in range(instance.n_servers) if k != home),
                key=lambda k: inv[home, k],
            )
            try_place(svc, preferred)

        # Multi-user services: redundant instances, one per demand node,
        # preferring high-capacity servers near the demand (latency-first,
        # cost-blind).  Services with the most users are handled first;
        # this is the redundancy the paper criticizes.
        order = sorted(multi_user, key=lambda s: -int(counts[s].sum()))
        for svc in order:
            demand_nodes = np.nonzero(counts[svc] > 0)[0]
            for f in (int(v) for v in demand_nodes):
                preferred = sorted(
                    range(instance.n_servers),
                    key=lambda k: (inv[f, k], -comp[k]),
                )
                # prioritize high capacity among the nearby third
                near = preferred[: max(1, len(preferred) // 3)]
                near = sorted(near, key=lambda k: -comp[k])
                try_place(svc, near + preferred)

        routing = greedy_routing(instance, x)
        runtime = sw.stop()
        return finalize(instance, x, routing, runtime)
