"""Greedy Combine with Objective Gradient (GC-OG) baseline.

The paper's strongest heuristic baseline: "combines greedy strategies
with objective gradient descent, … selecting instance combinations that
most effectively reduce objective values.  However, its low search
efficiency became a limiting factor as user requests grew, resulting in
an exponentially growing search space" — with 120 users it needed
2 274.8 s against SoCL's seconds.

Implementation: start from the storage-feasible *full* placement (every
requested service on every server with room), then repeatedly evaluate
**every** feasible single-instance removal by its *true* objective
change (re-routing all requests optimally each time — this full
re-evaluation is exactly why GC-OG is slow) and apply the best removal.
Stops when the budget and storage are satisfied and no removal improves
the objective.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, finalize
from repro.model.cost import deployment_cost, storage_used
from repro.model.instance import ProblemInstance
from repro.model.objective import objective_value
from repro.model.placement import Placement
from repro.model.routing import optimal_routing
from repro.utils.timing import Stopwatch


class GreedyCombineOG:
    """GC-OG: exhaustive greedy removal by true objective gradient."""

    name = "GC-OG"

    def __init__(self, max_iterations: int = 100_000):
        if max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {max_iterations}")
        self.max_iterations = max_iterations

    def _initial_placement(self, instance: ProblemInstance) -> Placement:
        """Full placement trimmed to per-server storage capacity.

        Services are admitted per server in descending local demand so
        the trim keeps the most useful instances.
        """
        x = Placement.empty(instance)
        phi = instance.service_storage
        counts = instance.demand_counts
        room = instance.server_storage.astype(np.float64).copy()

        # Coverage pass first (capacity-respecting): every requested
        # service gets one instance at its highest-demand node with room.
        coverage_order = sorted(
            (int(i) for i in instance.requested_services),
            key=lambda s: -counts[s].sum(),
        )
        for svc in coverage_order:
            by_demand = np.argsort(-counts[svc])
            for k in (int(v) for v in by_demand):
                if phi[svc] <= room[k]:
                    x.add(svc, k)
                    room[k] -= float(phi[svc])
                    break

        # Fill pass: pack remaining room per server in descending local
        # demand (the "full placement" GC-OG starts its descent from).
        for k in range(instance.n_servers):
            order = sorted(
                (int(i) for i in instance.requested_services),
                key=lambda s: -counts[s, k],
            )
            for svc in order:
                if not x.has(svc, k) and phi[svc] <= room[k]:
                    x.add(svc, k)
                    room[k] -= float(phi[svc])
        return x

    def solve(self, instance: ProblemInstance) -> BaselineResult:
        sw = Stopwatch()
        sw.start()
        budget = instance.config.budget
        x = self._initial_placement(instance)

        evaluations = 0
        for _ in range(self.max_iterations):
            over_budget = deployment_cost(instance, x) > budget
            current = objective_value(instance, x, optimal_routing(instance, x))

            best_key = None
            best_obj = np.inf
            for svc, k in x.pairs():
                if x.instance_count(svc) <= 1:
                    continue
                x.remove(svc, k)
                obj = objective_value(instance, x, optimal_routing(instance, x))
                evaluations += 1
                x.add(svc, k)
                if obj < best_obj:
                    best_obj = obj
                    best_key = (svc, k)

            if best_key is None:
                break
            if not over_budget and best_obj >= current:
                break
            x.remove(*best_key)

        routing = optimal_routing(instance, x)
        runtime = sw.stop()
        return finalize(
            instance, x, routing, runtime, extra={"evaluations": evaluations}
        )
