"""Shared solver protocol and result type for all algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.model.constraints import FeasibilityReport, feasibility_report
from repro.model.instance import ProblemInstance
from repro.model.objective import ObjectiveReport, evaluate
from repro.model.placement import Placement, Routing


@dataclass(frozen=True)
class BaselineResult:
    """Uniform outcome record for baseline solvers."""

    placement: Placement
    routing: Routing
    report: ObjectiveReport
    feasibility: FeasibilityReport
    runtime: float
    extra: dict = None  # solver-specific diagnostics

    @property
    def objective(self) -> float:
        return self.report.objective


def finalize(
    instance: ProblemInstance,
    placement: Placement,
    routing: Routing,
    runtime: float,
    extra: Optional[dict] = None,
) -> BaselineResult:
    """Score a (placement, routing) pair into a :class:`BaselineResult`."""
    return BaselineResult(
        placement=placement,
        routing=routing,
        report=evaluate(instance, placement, routing),
        feasibility=feasibility_report(instance, placement, routing),
        runtime=runtime,
        extra=extra or {},
    )


@runtime_checkable
class Solver(Protocol):
    """Protocol every algorithm implements (SoCL and all baselines)."""

    name: str

    def solve(self, instance: ProblemInstance):  # pragma: no cover - protocol
        ...
