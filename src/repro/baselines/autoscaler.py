"""ROI auto-scaler baseline (extension; cf. paper ref. [24], "RIA:
Return on Investment Auto-scaler for Serverless Edge Functions").

A stateful online policy in the spirit of threshold auto-scalers: it
never re-plans globally, it only nudges replica counts between slots.

Per slot and per requested service:

* **scale out** — while the estimated *return on investment* of the best
  additional replica is positive: the marginal latency saving, priced at
  ``(1−λ)``, must exceed ``roi_threshold ×`` the deployment cost priced
  at ``λ``.  The candidate node is the one minimizing the service's
  nearest-replica latency after addition (the same star estimate the
  relocation polish uses).
* **scale in** — replicas whose removal costs less latency than
  ``roi_threshold ×`` their deployment cost are retired (reverse ROI).
* budget and storage are enforced throughout; unrequested services are
  retired; newly requested services get one coverage replica.

Routing is greedy (nearest replica), as a lightweight function router
would do.  Against SoCL this baseline shows what local replica-count
control alone achieves without the partition/placement reasoning.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineResult, finalize
from repro.model.cost import deployment_cost
from repro.model.instance import ProblemInstance
from repro.model.placement import Placement
from repro.model.routing import greedy_routing
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_non_negative


class ROIAutoscaler:
    """Threshold-free ROI-driven replica controller."""

    name = "ROI-AS"

    def __init__(self, roi_threshold: float = 1.0, max_actions_per_slot: int = 64):
        check_non_negative("roi_threshold", roi_threshold)
        if max_actions_per_slot < 1:
            raise ValueError(
                f"max_actions_per_slot must be >= 1, got {max_actions_per_slot}"
            )
        self.roi_threshold = float(roi_threshold)
        self.max_actions_per_slot = int(max_actions_per_slot)
        self._placement: Optional[Placement] = None
        self._shape: Optional[tuple[int, int]] = None

    def reset(self) -> None:
        self._placement = None
        self._shape = None

    # ------------------------------------------------------------------
    def _service_latency(self, instance: ProblemInstance, svc: int, hosts) -> float:
        """Nearest-replica latency estimate for one service's demand."""
        hosts = np.asarray(hosts, dtype=np.int64)
        demand_nodes = np.nonzero(instance.demand_counts[svc] > 0)[0]
        if demand_nodes.size == 0 or hosts.size == 0:
            return 0.0
        inv = instance.inv_rate[: instance.n_servers, : instance.n_servers]
        comp = instance.network.compute
        w = instance.demand_data[svc][demand_nodes]
        nf = instance.demand_counts[svc][demand_nodes].astype(np.float64)
        q = instance.service_compute[svc]
        cost = (
            w[:, None] * inv[np.ix_(demand_nodes, hosts)]
            + nf[:, None] * (q / comp[hosts])[None, :]
        )
        return float(cost.min(axis=1).sum())

    def solve(self, instance: ProblemInstance) -> BaselineResult:
        sw = Stopwatch()
        sw.start()
        lam = instance.config.weight
        mu = 1.0 - lam
        kappa = instance.service_cost
        phi = instance.service_storage
        capacity = instance.server_storage
        budget = instance.config.budget
        requested = set(int(i) for i in instance.requested_services)
        shape = (instance.n_services, instance.n_servers)

        if self._placement is None or self._shape != shape:
            x = Placement.empty(instance)
        else:
            x = self._placement.copy()

        # retire unrequested services
        for svc, node in x.pairs():
            if svc not in requested:
                x.remove(svc, node)

        used = phi @ x.matrix.astype(np.float64)
        spent = deployment_cost(instance, x)
        inv = instance.inv_rate

        # coverage replica for new services (demand-weighted best node)
        for svc in sorted(requested):
            if x.instance_count(svc) > 0:
                continue
            demand_nodes = np.nonzero(instance.demand_counts[svc] > 0)[0]
            weights = instance.demand_counts[svc, demand_nodes].astype(np.float64)
            score = (
                weights[:, None] * inv[demand_nodes, : instance.n_servers]
            ).sum(axis=0)
            order = np.argsort(score)
            for k in (int(v) for v in order):
                if used[k] + phi[svc] <= capacity[k] + 1e-9 and spent + kappa[svc] <= budget:
                    x.add(svc, k)
                    used[k] += phi[svc]
                    spent += float(kappa[svc])
                    break

        actions = 0
        # ---------------- scale out by positive ROI ----------------
        for svc in sorted(requested, key=lambda s: -instance.demand_counts[s].sum()):
            while actions < self.max_actions_per_slot:
                hosts = x.hosts(svc)
                if hosts.size == 0:
                    break
                base = self._service_latency(instance, svc, hosts)
                best_gain, best_node = 0.0, None
                for k in range(instance.n_servers):
                    if x.has(svc, k):
                        continue
                    if used[k] + phi[svc] > capacity[k] + 1e-9:
                        continue
                    if spent + kappa[svc] > budget:
                        continue
                    gain = base - self._service_latency(
                        instance, svc, np.append(hosts, k)
                    )
                    if gain > best_gain:
                        best_gain, best_node = gain, k
                if (
                    best_node is None
                    or mu * best_gain < self.roi_threshold * lam * kappa[svc]
                ):
                    break
                x.add(svc, int(best_node))
                used[best_node] += phi[svc]
                spent += float(kappa[svc])
                actions += 1

        # ---------------- scale in by negative ROI ----------------
        for svc in sorted(requested):
            while actions < self.max_actions_per_slot:
                hosts = x.hosts(svc)
                if hosts.size <= 1:
                    break
                base = self._service_latency(instance, svc, hosts)
                best_loss, victim = np.inf, None
                for k in (int(v) for v in hosts):
                    remaining = hosts[hosts != k]
                    loss = self._service_latency(instance, svc, remaining) - base
                    if loss < best_loss:
                        best_loss, victim = loss, k
                if victim is None or mu * best_loss > self.roi_threshold * lam * kappa[svc]:
                    break
                x.remove(svc, victim)
                used[victim] -= phi[svc]
                spent -= float(kappa[svc])
                actions += 1

        routing = greedy_routing(instance, x)
        self._placement = x.copy()
        self._shape = shape
        runtime = sw.stop()
        return finalize(
            instance, x, routing, runtime, extra={"actions": actions}
        )
