"""JSON serialization for instances, decisions and results.

Real experiment pipelines checkpoint their inputs and outputs; this
module round-trips every core object through plain JSON-compatible
dicts so scenarios can be archived, diffed and replayed:

* :func:`network_to_dict` / :func:`network_from_dict`
* :func:`application_to_dict` / :func:`application_from_dict`
* :func:`request_to_dict` / :func:`request_from_dict`
* :func:`instance_to_dict` / :func:`instance_from_dict`
* :func:`placement_to_dict` / :func:`placement_from_dict`
* :func:`routing_to_dict` / :func:`routing_from_dict`
* :func:`save_instance` / :func:`load_instance` — file convenience
* :func:`solution_to_dict` — one-shot bundle of a solver result

All dicts carry a ``"kind"`` tag and a ``"version"`` field; loaders
validate both so stale archives fail loudly instead of deserializing
garbage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

from repro.microservices.application import Application, Microservice
from repro.model.instance import ProblemConfig, ProblemInstance
from repro.model.placement import Placement, Routing
from repro.network.topology import EdgeNetwork, EdgeServer, Link
from repro.workload.requests import UserRequest

FORMAT_VERSION = 1


def _check_header(data: dict, kind: str) -> None:
    if not isinstance(data, dict):
        raise TypeError(f"expected dict, got {type(data).__name__}")
    if data.get("kind") != kind:
        raise ValueError(
            f"expected kind {kind!r}, got {data.get('kind')!r}"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )


# ---------------------------------------------------------------- network
def network_to_dict(network: EdgeNetwork) -> dict:
    return {
        "kind": "network",
        "version": FORMAT_VERSION,
        "servers": [
            {
                "index": s.index,
                "compute": s.compute,
                "storage": s.storage,
                "position": list(s.position),
                "name": s.name,
            }
            for s in network.servers
        ],
        "links": [
            {
                "u": l.u,
                "v": l.v,
                "bandwidth": l.bandwidth,
                "gain": l.gain,
                "power": l.power,
                "noise": l.noise,
            }
            for l in network.links
        ],
    }


def network_from_dict(data: dict) -> EdgeNetwork:
    _check_header(data, "network")
    servers = [
        EdgeServer(
            index=int(s["index"]),
            compute=float(s["compute"]),
            storage=float(s["storage"]),
            position=tuple(s["position"]),
            name=s.get("name", ""),
        )
        for s in data["servers"]
    ]
    links = [
        Link(
            u=int(l["u"]),
            v=int(l["v"]),
            bandwidth=float(l["bandwidth"]),
            gain=float(l["gain"]),
            power=float(l["power"]),
            noise=float(l["noise"]),
        )
        for l in data["links"]
    ]
    return EdgeNetwork(servers, links)


# ------------------------------------------------------------ application
def application_to_dict(app: Application) -> dict:
    return {
        "kind": "application",
        "version": FORMAT_VERSION,
        "name": app.name,
        "services": [
            {
                "index": m.index,
                "name": m.name,
                "compute": m.compute,
                "storage": m.storage,
                "deploy_cost": m.deploy_cost,
                "data_out": m.data_out,
            }
            for m in app.services
        ],
        "dependencies": [list(e) for e in app.dependency_edges],
        "entrypoints": list(app.entrypoints),
    }


def application_from_dict(data: dict) -> Application:
    _check_header(data, "application")
    services = [
        Microservice(
            index=int(m["index"]),
            name=m["name"],
            compute=float(m["compute"]),
            storage=float(m["storage"]),
            deploy_cost=float(m["deploy_cost"]),
            data_out=float(m["data_out"]),
        )
        for m in data["services"]
    ]
    return Application(
        services,
        [tuple(e) for e in data["dependencies"]],
        entrypoints=data["entrypoints"],
        name=data.get("name", "app"),
    )


# ---------------------------------------------------------------- request
def request_to_dict(req: UserRequest) -> dict:
    return {
        "kind": "request",
        "version": FORMAT_VERSION,
        "index": req.index,
        "home": req.home,
        "chain": list(req.chain),
        "data_in": req.data_in,
        "data_out": req.data_out,
        "edge_data": list(req.edge_data),
    }


def request_from_dict(data: dict) -> UserRequest:
    _check_header(data, "request")
    return UserRequest(
        index=int(data["index"]),
        home=int(data["home"]),
        chain=tuple(int(s) for s in data["chain"]),
        data_in=float(data["data_in"]),
        data_out=float(data["data_out"]),
        edge_data=tuple(float(d) for d in data["edge_data"]),
    )


# --------------------------------------------------------------- instance
def config_to_dict(config: ProblemConfig) -> dict:
    return {
        "kind": "config",
        "version": FORMAT_VERSION,
        "weight": config.weight,
        "budget": config.budget,
        "deadline": config.deadline if np.isfinite(config.deadline) else None,
        "latency_model": config.latency_model,
        "cloud_inv_rate": config.cloud_inv_rate,
        "cloud_compute": config.cloud_compute,
    }


def config_from_dict(data: dict) -> ProblemConfig:
    _check_header(data, "config")
    deadline = data["deadline"]
    return ProblemConfig(
        weight=float(data["weight"]),
        budget=float(data["budget"]),
        deadline=float("inf") if deadline is None else float(deadline),
        latency_model=data["latency_model"],
        cloud_inv_rate=float(data["cloud_inv_rate"]),
        cloud_compute=float(data["cloud_compute"]),
    )


def instance_to_dict(instance: ProblemInstance) -> dict:
    deadlines = instance._deadlines
    return {
        "kind": "instance",
        "version": FORMAT_VERSION,
        "network": network_to_dict(instance.network),
        "application": application_to_dict(instance.app),
        "requests": [request_to_dict(r) for r in instance.requests],
        "config": config_to_dict(instance.config),
        "deadlines": None if deadlines is None else [float(d) for d in deadlines],
    }


def instance_from_dict(data: dict) -> ProblemInstance:
    _check_header(data, "instance")
    return ProblemInstance(
        network_from_dict(data["network"]),
        application_from_dict(data["application"]),
        [request_from_dict(r) for r in data["requests"]],
        config_from_dict(data["config"]),
        deadlines=data.get("deadlines"),
    )


# -------------------------------------------------------------- decisions
def placement_to_dict(placement: Placement) -> dict:
    return {
        "kind": "placement",
        "version": FORMAT_VERSION,
        "n_services": placement.n_services,
        "n_servers": placement.n_servers,
        "pairs": [list(p) for p in placement.pairs()],
    }


def placement_from_dict(data: dict) -> Placement:
    _check_header(data, "placement")
    x = np.zeros((int(data["n_services"]), int(data["n_servers"])), dtype=bool)
    for i, k in data["pairs"]:
        x[int(i), int(k)] = True
    return Placement(x)


def routing_to_dict(routing: Routing) -> dict:
    inst = routing.instance
    return {
        "kind": "routing",
        "version": FORMAT_VERSION,
        "assignments": [
            [int(n) for n in routing.nodes_for(h)]
            for h in range(inst.n_requests)
        ],
    }


def routing_from_dict(data: dict, instance: ProblemInstance) -> Routing:
    _check_header(data, "routing")
    return Routing.from_lists(instance, data["assignments"])


def solution_to_dict(instance: ProblemInstance, result) -> dict:
    """Bundle a solver result (anything with placement/routing/report)."""
    return {
        "kind": "solution",
        "version": FORMAT_VERSION,
        "placement": placement_to_dict(result.placement),
        "routing": routing_to_dict(result.routing),
        "objective": result.report.objective,
        "cost": result.report.cost,
        "latency_sum": result.report.latency_sum,
        "runtime": result.runtime,
    }


# ------------------------------------------------------------------ files
PathLike = Union[str, Path]


def save_instance(instance: ProblemInstance, path: PathLike) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(
        json.dumps(instance_to_dict(instance), indent=1), encoding="utf-8"
    )


def load_instance(path: PathLike) -> ProblemInstance:
    """Read an instance back from :func:`save_instance` output."""
    return instance_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
