"""JSONL trace export, record-schema validation and summary rendering.

A trace file is one JSON object per line.  Schema (version 2; version-1
files remain valid — the two new record kinds simply never appear in
them):

* ``{"type": "meta", "schema": 1 | 2, "name": str}`` — exactly one,
  first line of the file;
* ``{"type": "span", "name": str, "path": str, "depth": int,
  "start": float, "duration": float, "attrs": dict}`` — one per span,
  depth-first, ``path`` is the ``/``-joined ancestry (root first) and
  ``depth`` its length minus one;
* ``{"type": "counter", "name": str, "value": int | float}``;
* ``{"type": "gauge", "name": str, "value": float}``;
* ``{"type": "hist", "name": str, "error": float, "count": int,
  "zero": int, "sum": float, "min": float | null, "max": float | null,
  "buckets": {str(int): int}}`` — a
  :meth:`repro.obs.hist.StreamingHistogram.as_dict` payload
  (schema >= 2 only);
* ``{"type": "snapshot", "slot": int, "time": float, "data": dict}`` —
  one :class:`repro.obs.flight.FlightRecorder` ring entry
  (schema >= 2 only).

:func:`validate_record` enforces exactly this contract and
:func:`validate_jsonl` version-gates it: record kinds introduced by
schema 2 are rejected in a schema-1 file with a clear error, and truly
unknown kinds are always rejected (never passed through silently).
docs/OBSERVABILITY.md is the human-readable version of the same schema.
"""

from __future__ import annotations

import json
from typing import Iterator, Mapping, Optional

from repro.obs.tracer import Span, Tracer

#: Version stamped into the meta record; bump on breaking schema changes.
SCHEMA_VERSION = 2

#: Meta versions this validator still accepts.
SUPPORTED_SCHEMAS = (1, 2)

_RECORD_TYPES = ("meta", "span", "counter", "gauge", "hist", "snapshot")

#: Record kinds only valid at or above the keyed schema version.
_KIND_MIN_SCHEMA = {"hist": 2, "snapshot": 2}


def _span_records(span: Span, path: str) -> Iterator[dict]:
    full = f"{path}/{span.name}" if path else span.name
    yield {
        "type": "span",
        "name": span.name,
        "path": full,
        "depth": full.count("/"),
        "start": float(span.start),
        "duration": float(span.duration),
        "attrs": dict(span.attrs),
    }
    for child in span.children:
        yield from _span_records(child, full)


def trace_records(tracer: Tracer) -> Iterator[dict]:
    """All JSONL records of ``tracer``: meta, spans (DFS), counters,
    gauges, histograms, then flight-recorder snapshots (when attached).
    """
    yield {"type": "meta", "schema": SCHEMA_VERSION, "name": tracer.name}
    for root in tracer.roots:
        yield from _span_records(root, "")
    for name in sorted(tracer.counters):
        yield {"type": "counter", "name": name, "value": tracer.counters[name]}
    for name in sorted(tracer.gauges):
        yield {"type": "gauge", "name": name, "value": tracer.gauges[name]}
    for name in sorted(tracer.hists):
        yield {"type": "hist", "name": name, **tracer.hists[name].as_dict()}
    flight = getattr(tracer, "flight", None)
    if flight is not None:
        for record in flight.records():
            yield {"type": "snapshot", **record}


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path`` as JSONL; returns the record count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in trace_records(tracer):
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
    return n


def validate_record(record: Mapping, schema: int = SCHEMA_VERSION) -> None:
    """Raise ``ValueError`` unless ``record`` matches the documented schema.

    ``schema`` is the file's declared meta version: kinds introduced
    later (``hist``/``snapshot`` at schema 2) are rejected with a clear
    "requires schema" error when validating an older file.
    """
    if not isinstance(record, Mapping):
        raise ValueError(f"record must be a mapping, got {type(record).__name__}")
    kind = record.get("type")
    if kind not in _RECORD_TYPES:
        raise ValueError(f"unknown record type {kind!r}; expected {_RECORD_TYPES}")
    needs = _KIND_MIN_SCHEMA.get(kind, 1)
    if schema < needs:
        raise ValueError(
            f"record type {kind!r} requires schema >= {needs}, "
            f"but this trace declares schema {schema}"
        )
    if kind == "meta":
        _require(record, "schema", int)
        _require(record, "name", str)
        if record["schema"] not in SUPPORTED_SCHEMAS:
            raise ValueError(
                f"unsupported schema version {record['schema']}; "
                f"supported: {SUPPORTED_SCHEMAS}"
            )
        return
    if kind == "snapshot":
        _require(record, "slot", int)
        start = _require(record, "time", (int, float))
        if start < 0:
            raise ValueError("snapshot time must be >= 0")
        data = _require(record, "data", Mapping)
        for key, value in data.items():
            if not isinstance(key, str):
                raise ValueError("snapshot data keys must be strings")
            if isinstance(value, bool) or not isinstance(
                value, (int, float, type(None))
            ):
                raise ValueError(
                    f"snapshot data value {key!r} must be numeric or null"
                )
        return
    _require(record, "name", str)
    if kind == "span":
        _require(record, "path", str)
        _require(record, "depth", int)
        _require(record, "start", (int, float))
        _require(record, "duration", (int, float))
        if record["duration"] < 0:
            raise ValueError("span duration must be >= 0")
        attrs = _require(record, "attrs", Mapping)
        if not all(isinstance(k, str) for k in attrs):
            raise ValueError("span attrs keys must be strings")
        if not record["path"].endswith(record["name"]):
            raise ValueError("span path must end with its name")
        if record["depth"] != record["path"].count("/"):
            raise ValueError("span depth must match its path")
    elif kind == "hist":
        error = _require(record, "error", (int, float))
        if not (0.0 < error < 1.0):
            raise ValueError(f"hist error must be in (0, 1), got {error}")
        count = _require(record, "count", int)
        zero = _require(record, "zero", int)
        if count < 0 or zero < 0 or zero > count:
            raise ValueError("hist counts must satisfy 0 <= zero <= count")
        _require(record, "sum", (int, float))
        for key in ("min", "max"):
            value = _require(record, key, (int, float, type(None)))
            if (value is None) != (count == 0):
                raise ValueError(
                    f"hist {key!r} must be null iff the histogram is empty"
                )
        buckets = _require(record, "buckets", Mapping)
        bucketed = 0
        for bkey, bval in buckets.items():
            if not isinstance(bkey, str):
                raise ValueError("hist bucket keys must be strings")
            try:
                int(bkey)
            except ValueError:
                raise ValueError(
                    f"hist bucket key {bkey!r} must parse as an integer"
                ) from None
            if isinstance(bval, bool) or not isinstance(bval, int) or bval < 0:
                raise ValueError("hist bucket counts must be ints >= 0")
            bucketed += bval
        if bucketed + zero != count:
            raise ValueError("hist bucket counts plus zero must equal count")
    else:  # counter / gauge
        value = _require(record, "value", (int, float))
        if isinstance(value, bool):
            raise ValueError(f"{kind} value must be numeric, got bool")


def _require(record: Mapping, key: str, types) -> object:
    if key not in record:
        raise ValueError(f"record missing required key {key!r}")
    value = record[key]
    if isinstance(value, bool) and types in (int, (int, float)):
        raise ValueError(f"key {key!r} must be {types}, got bool")
    if not isinstance(value, types):
        raise ValueError(
            f"key {key!r} must be {types}, got {type(value).__name__}"
        )
    return value


def validate_jsonl(path: str) -> int:
    """Validate every line of a trace file; returns the record count.

    The first line must be the ``meta`` record; its declared schema
    version gates which record kinds the remaining lines may use.
    """
    n = 0
    schema: Optional[int] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if schema is None:
                    if not isinstance(record, Mapping) or record.get("type") != "meta":
                        raise ValueError("first record must be the meta record")
                    validate_record(record, schema=SCHEMA_VERSION)
                    schema = int(record["schema"])
                else:
                    if isinstance(record, Mapping) and record.get("type") == "meta":
                        raise ValueError("duplicate meta record")
                    validate_record(record, schema=schema)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            n += 1
    if n == 0:
        raise ValueError(f"{path}: empty trace file")
    return n


def summary(tracer: Tracer) -> str:
    """Human-readable run summary: span time tree + counter/gauge table."""
    # imported lazily: repro.experiments pulls in the solver stack, which
    # itself imports repro.obs — the function-level import breaks the cycle.
    from repro.experiments.reporting import format_counters, format_span_tree

    parts = [f"trace {tracer.name!r}"]
    tree = format_span_tree(
        [r for r in trace_records(tracer) if r["type"] == "span"]
    )
    if tree:
        parts.append(tree)
    table = format_counters(tracer.counters, tracer.gauges)
    if table:
        parts.append(table)
    return "\n\n".join(parts)
