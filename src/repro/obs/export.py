"""JSONL trace export, record-schema validation and summary rendering.

A trace file is one JSON object per line.  Schema (version 1):

* ``{"type": "meta", "schema": 1, "name": str}`` — exactly one, first
  line of the file;
* ``{"type": "span", "name": str, "path": str, "depth": int,
  "start": float, "duration": float, "attrs": dict}`` — one per span,
  depth-first, ``path`` is the ``/``-joined ancestry (root first) and
  ``depth`` its length minus one;
* ``{"type": "counter", "name": str, "value": int | float}``;
* ``{"type": "gauge", "name": str, "value": float}``.

:func:`validate_record` enforces exactly this contract (the CI traced
smoke step runs it over every emitted line); docs/OBSERVABILITY.md is
the human-readable version of the same schema.
"""

from __future__ import annotations

import json
from typing import Iterator, Mapping

from repro.obs.tracer import Span, Tracer

#: Version stamped into the meta record; bump on breaking schema changes.
SCHEMA_VERSION = 1

_RECORD_TYPES = ("meta", "span", "counter", "gauge")


def _span_records(span: Span, path: str) -> Iterator[dict]:
    full = f"{path}/{span.name}" if path else span.name
    yield {
        "type": "span",
        "name": span.name,
        "path": full,
        "depth": full.count("/"),
        "start": float(span.start),
        "duration": float(span.duration),
        "attrs": dict(span.attrs),
    }
    for child in span.children:
        yield from _span_records(child, full)


def trace_records(tracer: Tracer) -> Iterator[dict]:
    """All JSONL records of ``tracer``: meta, spans (DFS), counters, gauges."""
    yield {"type": "meta", "schema": SCHEMA_VERSION, "name": tracer.name}
    for root in tracer.roots:
        yield from _span_records(root, "")
    for name in sorted(tracer.counters):
        yield {"type": "counter", "name": name, "value": tracer.counters[name]}
    for name in sorted(tracer.gauges):
        yield {"type": "gauge", "name": name, "value": tracer.gauges[name]}


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path`` as JSONL; returns the record count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in trace_records(tracer):
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
    return n


def validate_record(record: Mapping) -> None:
    """Raise ``ValueError`` unless ``record`` matches the documented schema."""
    if not isinstance(record, Mapping):
        raise ValueError(f"record must be a mapping, got {type(record).__name__}")
    kind = record.get("type")
    if kind not in _RECORD_TYPES:
        raise ValueError(f"unknown record type {kind!r}; expected {_RECORD_TYPES}")
    if kind == "meta":
        _require(record, "schema", int)
        _require(record, "name", str)
        if record["schema"] != SCHEMA_VERSION:
            raise ValueError(f"unsupported schema version {record['schema']}")
        return
    _require(record, "name", str)
    if kind == "span":
        _require(record, "path", str)
        _require(record, "depth", int)
        _require(record, "start", (int, float))
        _require(record, "duration", (int, float))
        if record["duration"] < 0:
            raise ValueError("span duration must be >= 0")
        attrs = _require(record, "attrs", Mapping)
        if not all(isinstance(k, str) for k in attrs):
            raise ValueError("span attrs keys must be strings")
        if not record["path"].endswith(record["name"]):
            raise ValueError("span path must end with its name")
        if record["depth"] != record["path"].count("/"):
            raise ValueError("span depth must match its path")
    else:  # counter / gauge
        value = _require(record, "value", (int, float))
        if isinstance(value, bool):
            raise ValueError(f"{kind} value must be numeric, got bool")


def _require(record: Mapping, key: str, types) -> object:
    if key not in record:
        raise ValueError(f"record missing required key {key!r}")
    value = record[key]
    if isinstance(value, bool) and types in (int, (int, float)):
        raise ValueError(f"key {key!r} must be {types}, got bool")
    if not isinstance(value, types):
        raise ValueError(
            f"key {key!r} must be {types}, got {type(value).__name__}"
        )
    return value


def validate_jsonl(path: str) -> int:
    """Validate every line of a trace file; returns the record count."""
    n = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                validate_record(json.loads(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            n += 1
    if n == 0:
        raise ValueError(f"{path}: empty trace file")
    return n


def summary(tracer: Tracer) -> str:
    """Human-readable run summary: span time tree + counter/gauge table."""
    # imported lazily: repro.experiments pulls in the solver stack, which
    # itself imports repro.obs — the function-level import breaks the cycle.
    from repro.experiments.reporting import format_counters, format_span_tree

    parts = [f"trace {tracer.name!r}"]
    tree = format_span_tree(
        [r for r in trace_records(tracer) if r["type"] == "span"]
    )
    if tree:
        parts.append(tree)
    table = format_counters(tracer.counters, tracer.gauges)
    if table:
        parts.append(table)
    return "\n\n".join(parts)
