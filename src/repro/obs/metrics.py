"""Counter/gauge/histogram registry backing the span tracer.

Counters are monotonically accumulated event counts (merge rounds,
cache hits, quota placements …); gauges are last-write-wins scalar
observations (final cost, ζ-cache size …); histograms are fixed-memory
streaming distributions (per-request latencies, replay rounds — see
:mod:`repro.obs.hist`).  The registry is a plain dict wrapper so
disabled-mode call sites can skip it entirely and process-pool workers
can ship it across the pickle boundary as the ``{"counters": …,
"gauges": …, "hists": …}`` payload produced by :meth:`as_dict`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from repro.obs.hist import DEFAULT_ERROR, StreamingHistogram


class MetricsRegistry:
    """Named counters, gauges and histograms with cross-worker merge."""

    __slots__ = ("counters", "gauges", "hists")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.hists: dict[str, StreamingHistogram] = {}

    def inc(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def get(self, name: str, default: Union[int, float] = 0) -> Union[int, float]:
        """Current value of the named counter (``default`` if never incremented)."""
        return self.counters.get(name, default)

    def set_gauge(self, name: str, value: float) -> None:
        """Record a last-write-wins gauge observation."""
        self.gauges[name] = float(value)

    def hist(
        self, name: str, error: float = DEFAULT_ERROR
    ) -> StreamingHistogram:
        """The named histogram, created on first use with ``error``."""
        h = self.hists.get(name)
        if h is None:
            h = self.hists[name] = StreamingHistogram(error=error)
        return h

    def observe(self, name: str, value: float) -> None:
        """Stream one sample into the named histogram."""
        self.hist(name).record(value)

    def observe_many(self, name: str, values) -> None:
        """Vectorized bulk ingest into the named histogram."""
        self.hist(name).record_many(values)

    def as_dict(self) -> dict:
        """Picklable snapshot (the payload shipped out of pool workers)."""
        payload = {"counters": dict(self.counters), "gauges": dict(self.gauges)}
        if self.hists:
            payload["hists"] = {n: h.as_dict() for n, h in self.hists.items()}
        return payload

    def merge(
        self,
        other: Union["MetricsRegistry", Mapping],
        prefix: str = "",
    ) -> None:
        """Fold ``other`` into this registry.

        Counters add, gauges last-write-win — so merging the payloads of
        N pool workers yields the same totals as running them serially
        under one registry.  ``other`` may be another registry or an
        :meth:`as_dict` payload; ``prefix`` namespaces the merged names.
        """
        if isinstance(other, MetricsRegistry):
            counters: Mapping = other.counters
            gauges: Mapping = other.gauges
            hists: Mapping = other.hists
        else:
            counters = other.get("counters", {})
            gauges = other.get("gauges", {})
            hists = other.get("hists", {})
        for name, value in counters.items():
            self.inc(prefix + name, value)
        for name, value in gauges.items():
            self.set_gauge(prefix + name, value)
        for name, payload in hists.items():
            error = (
                payload.error
                if isinstance(payload, StreamingHistogram)
                else float(payload.get("error", DEFAULT_ERROR))
            )
            self.hist(prefix + name, error=error).merge(payload)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.hists)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.hists)} hists)"
        )


def merged(payloads, prefix: str = "") -> MetricsRegistry:
    """Merge many worker payloads into a fresh registry."""
    reg = MetricsRegistry()
    for payload in payloads:
        if payload:
            reg.merge(payload, prefix=prefix)
    return reg
