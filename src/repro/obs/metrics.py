"""Counter/gauge registry backing the span tracer.

Counters are monotonically accumulated event counts (merge rounds,
cache hits, quota placements …); gauges are last-write-wins scalar
observations (final cost, ζ-cache size …).  The registry is a plain
dict wrapper so disabled-mode call sites can skip it entirely and
process-pool workers can ship it across the pickle boundary as the
``{"counters": …, "gauges": …}`` payload produced by :meth:`as_dict`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union


class MetricsRegistry:
    """Named counters and gauges with cross-worker merge support."""

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    def inc(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def get(self, name: str, default: Union[int, float] = 0) -> Union[int, float]:
        """Current value of the named counter (``default`` if never incremented)."""
        return self.counters.get(name, default)

    def set_gauge(self, name: str, value: float) -> None:
        """Record a last-write-wins gauge observation."""
        self.gauges[name] = float(value)

    def as_dict(self) -> dict:
        """Picklable snapshot (the payload shipped out of pool workers)."""
        return {"counters": dict(self.counters), "gauges": dict(self.gauges)}

    def merge(
        self,
        other: Union["MetricsRegistry", Mapping],
        prefix: str = "",
    ) -> None:
        """Fold ``other`` into this registry.

        Counters add, gauges last-write-win — so merging the payloads of
        N pool workers yields the same totals as running them serially
        under one registry.  ``other`` may be another registry or an
        :meth:`as_dict` payload; ``prefix`` namespaces the merged names.
        """
        if isinstance(other, MetricsRegistry):
            counters: Mapping = other.counters
            gauges: Mapping = other.gauges
        else:
            counters = other.get("counters", {})
            gauges = other.get("gauges", {})
        for name, value in counters.items():
            self.inc(prefix + name, value)
        for name, value in gauges.items():
            self.set_gauge(prefix + name, value)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges)"
        )


def merged(payloads, prefix: str = "") -> MetricsRegistry:
    """Merge many worker payloads into a fresh registry."""
    reg = MetricsRegistry()
    for payload in payloads:
        if payload:
            reg.merge(payload, prefix=prefix)
    return reg
