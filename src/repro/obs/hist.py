"""Mergeable fixed-memory streaming histograms (HDR-style log buckets).

At 1M users the runtime produces one completion latency, one queueing
delay and one replay-round count per request/slot — materializing them
to compute percentiles (the old ``LatencyRecorder.all_latencies``
concatenation) costs O(total-requests) memory and fights the streaming
design.  :class:`StreamingHistogram` replaces that with geometric
("log") buckets: bucket ``i`` covers ``[g**i, g**(i+1))`` for a growth
factor ``g`` chosen from the requested relative-error bound, so the
whole value range collapses into a few hundred integer counters no
matter how many samples stream through.

**Error bound.**  With ``g = (1 + e)**2`` every bucket's geometric
midpoint ``g**(i + 0.5)`` is within relative error ``e`` of *every*
value in the bucket (``max(r/v, v/r) <= sqrt(g) = 1 + e``), so any
quantile estimate returned by :meth:`StreamingHistogram.quantile` is
within relative error ``e`` of the true (nearest-rank) sample quantile.
The property suite (``tests/test_obs_hist.py``) checks this against
``np.percentile`` on random data.

**Merge.**  Histograms with the same error bound merge by adding bucket
counts — associative and commutative, mirroring
:meth:`repro.obs.metrics.MetricsRegistry.merge` — so shard workers ship
:meth:`StreamingHistogram.as_dict` payloads back with their slot result
and the parent folds them in with :meth:`StreamingHistogram.merge`.
Merged quantiles are identical to recording every sample in one
process (bucket assignment is a pure function of the value).

Zero and negative values land in a dedicated zero bucket (latencies
and round counts are nonnegative; negatives would have no log bucket).
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence, Union

import numpy as np

#: Default quantile relative-error bound (1%).
DEFAULT_ERROR = 0.01


class StreamingHistogram:
    """Log-bucketed streaming histogram with bounded relative error.

    Parameters
    ----------
    error:
        Maximum relative error of :meth:`quantile` answers (default
        :data:`DEFAULT_ERROR` = 1%).  Memory is O(log(max/min) /
        log((1+error)**2)) buckets — ~116 buckets per order of
        magnitude at 1%, independent of the sample count.
    """

    __slots__ = ("error", "_base", "_log_base", "buckets", "zero",
                 "count", "total", "min", "max")

    def __init__(self, error: float = DEFAULT_ERROR) -> None:
        if not (0.0 < error < 1.0):
            raise ValueError(f"error must be in (0, 1), got {error}")
        self.error = float(error)
        #: Bucket growth factor g = (1+e)^2; bucket i covers [g^i, g^(i+1)).
        self._base = (1.0 + self.error) ** 2
        self._log_base = math.log(self._base)
        self.buckets: dict[int, int] = {}
        self.zero = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ------------------------------------------------------
    def _index(self, value: float) -> int:
        return int(math.floor(math.log(value) / self._log_base))

    def record(self, value: float) -> None:
        """Stream one sample into the histogram (O(1), fixed memory)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram values must be finite, got {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero += 1
            return
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def record_many(self, values: Union[np.ndarray, Sequence[float]]) -> None:
        """Vectorized bulk ingest of a 1-D array of samples.

        Equivalent to calling :meth:`record` per element (same bucket
        function), but buckets whole arrays via ``np.unique`` — the hot
        path for per-slot latency columns.
        """
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        if not np.isfinite(arr).all():
            raise ValueError("histogram values must be finite")
        self.count += int(arr.size)
        self.total += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))
        positive = arr[arr > 0.0]
        self.zero += int(arr.size - positive.size)
        if positive.size == 0:
            return
        idx = np.floor(np.log(positive) / self._log_base).astype(np.int64)
        uniq, counts = np.unique(idx, return_counts=True)
        for i, c in zip(uniq.tolist(), counts.tolist()):
            self.buckets[i] = self.buckets.get(i, 0) + c

    # -- queries --------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean of all recorded samples (sum is tracked exactly)."""
        return self.total / self.count if self.count else 0.0

    def _representative(self, idx: int) -> float:
        # Geometric midpoint of bucket [g^i, g^(i+1)): within relative
        # error `self.error` of every value in the bucket.
        return self._base ** (idx + 0.5)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate, relative error <= ``error``.

        Returns the bucket representative holding the sample of rank
        ``ceil(q * count)`` (rank 1 for ``q == 0``), clamped to the
        exact observed ``[min, max]`` — so ``quantile(0.0) == min`` and
        ``quantile(1.0) == max`` are exact.  Raises ``ValueError`` on an
        empty histogram (there is no sample to answer with).
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of an empty histogram")
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = max(1, math.ceil(q * self.count))
        cum = self.zero
        if rank <= cum:
            # The rank-th sample is one of the <= 0 values; min is the
            # tightest bound we kept for those.
            return min(self.min, 0.0)
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if rank <= cum:
                rep = self._representative(idx)
                return min(max(rep, self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    def quantiles(self, qs: Sequence[float]) -> list[float]:
        """Batch :meth:`quantile` for a list of probabilities."""
        return [self.quantile(q) for q in qs]

    def __len__(self) -> int:
        return len(self.buckets) + (1 if self.zero else 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingHistogram(count={self.count}, "
            f"buckets={len(self.buckets)}, error={self.error})"
        )

    # -- cross-process payloads ----------------------------------------
    def as_dict(self) -> dict:
        """Picklable/JSON-safe snapshot (bucket keys become strings)."""
        return {
            "error": self.error,
            "count": self.count,
            "zero": self.zero,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(i): c for i, c in self.buckets.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StreamingHistogram":
        """Rebuild a histogram from an :meth:`as_dict` payload."""
        hist = cls(error=float(payload.get("error", DEFAULT_ERROR)))
        hist.count = int(payload.get("count", 0))
        hist.zero = int(payload.get("zero", 0))
        hist.total = float(payload.get("sum", 0.0))
        lo = payload.get("min")
        hi = payload.get("max")
        hist.min = math.inf if lo is None else float(lo)
        hist.max = -math.inf if hi is None else float(hi)
        hist.buckets = {
            int(i): int(c) for i, c in payload.get("buckets", {}).items()
        }
        return hist

    def merge(self, other: Union["StreamingHistogram", Mapping]) -> None:
        """Fold another histogram (or its payload) into this one.

        Bucket counts add, ``min``/``max`` combine, exact sums add —
        associative and commutative, so merging N worker payloads in any
        order equals recording every sample under one histogram.  Raises
        ``ValueError`` if the error bounds (bucket bases) differ.
        """
        if isinstance(other, Mapping):
            other = StreamingHistogram.from_dict(other)
        if not math.isclose(other.error, self.error, rel_tol=1e-12):
            raise ValueError(
                f"cannot merge histograms with different error bounds "
                f"({self.error} vs {other.error})"
            )
        self.count += other.count
        self.zero += other.zero
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for idx, c in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + c


def merged_hist(
    payloads: Sequence[Union[StreamingHistogram, Mapping, None]],
    error: Optional[float] = None,
) -> StreamingHistogram:
    """Merge many histogram payloads into a fresh histogram.

    ``error`` defaults to the first payload's bound (or
    :data:`DEFAULT_ERROR` when every payload is empty/None).
    """
    live = [p for p in payloads if p]
    if error is None:
        if live:
            first = live[0]
            error = (
                first.error
                if isinstance(first, StreamingHistogram)
                else float(first.get("error", DEFAULT_ERROR))
            )
        else:
            error = DEFAULT_ERROR
    out = StreamingHistogram(error=error)
    for payload in live:
        out.merge(payload)
    return out
