"""Stdlib-logging wiring for the ``repro`` package.

Library modules obtain loggers the standard way
(``logging.getLogger(__name__)``) and never configure handlers; the CLI
(or any embedding application) calls :func:`setup_logging` once to pick
the verbosity.  ``--log-level debug`` narrates stage progress, merge
rounds and per-slot simulator events; the default ``warning`` keeps the
library silent, matching the previous behavior.
"""

from __future__ import annotations

import logging
from typing import Optional, Union

#: CLI-facing level names (any stdlib level name also works).
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def setup_logging(
    level: Union[str, int, None] = "warning",
    stream=None,
) -> logging.Logger:
    """Configure root logging for the repro package; returns its logger.

    ``level`` accepts a name from :data:`LOG_LEVELS` (case-insensitive)
    or a numeric stdlib level.  Reconfigures on repeat calls (``force``)
    so tests and long-lived sessions can change verbosity.
    """
    if level is None:
        level = "warning"
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(
                f"unknown log level {level!r}; choices: {LOG_LEVELS}"
            )
        level = resolved
    logging.basicConfig(level=level, format=_FORMAT, stream=stream, force=True)
    return logging.getLogger("repro")
