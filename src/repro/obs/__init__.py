"""Observability: span tracing, counters, trace export and logging.

The instrumentation contract for the rest of the package:

* read the ambient tracer with :func:`current_tracer` — it defaults to
  the no-op :data:`NULL_TRACER`, so call sites need no enabled check for
  spans and counter increments;
* gate any *extra computation* done only for telemetry behind
  ``tracer.enabled`` so disabled runs stay at full speed;
* never let telemetry change results: tracing must be observational
  (the tier-1 suite asserts bit-identical solver outputs on vs off).

See docs/OBSERVABILITY.md for the trace schema, counter catalog and
CLI usage (``--trace out.jsonl --log-level debug``).
"""

from repro.obs.hist import DEFAULT_ERROR, StreamingHistogram, merged_hist
from repro.obs.metrics import MetricsRegistry, merged
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder, current_rss_kb
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate_tracer,
    current_tracer,
    use_tracer,
)
from repro.obs.export import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    summary,
    trace_records,
    validate_jsonl,
    validate_record,
    write_jsonl,
)
from repro.obs.logsetup import LOG_LEVELS, setup_logging

__all__ = [
    "DEFAULT_ERROR",
    "StreamingHistogram",
    "merged_hist",
    "MetricsRegistry",
    "merged",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "current_rss_kb",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "activate_tracer",
    "current_tracer",
    "use_tracer",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "summary",
    "trace_records",
    "validate_jsonl",
    "validate_record",
    "write_jsonl",
    "LOG_LEVELS",
    "setup_logging",
]
