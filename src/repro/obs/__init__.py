"""Observability: span tracing, counters, trace export and logging.

The instrumentation contract for the rest of the package:

* read the ambient tracer with :func:`current_tracer` — it defaults to
  the no-op :data:`NULL_TRACER`, so call sites need no enabled check for
  spans and counter increments;
* gate any *extra computation* done only for telemetry behind
  ``tracer.enabled`` so disabled runs stay at full speed;
* never let telemetry change results: tracing must be observational
  (the tier-1 suite asserts bit-identical solver outputs on vs off).

See docs/OBSERVABILITY.md for the trace schema, counter catalog and
CLI usage (``--trace out.jsonl --log-level debug``).
"""

from repro.obs.metrics import MetricsRegistry, merged
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)
from repro.obs.export import (
    SCHEMA_VERSION,
    summary,
    trace_records,
    validate_jsonl,
    validate_record,
    write_jsonl,
)
from repro.obs.logsetup import LOG_LEVELS, setup_logging

__all__ = [
    "MetricsRegistry",
    "merged",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "SCHEMA_VERSION",
    "summary",
    "trace_records",
    "validate_jsonl",
    "validate_record",
    "write_jsonl",
    "LOG_LEVELS",
    "setup_logging",
]
