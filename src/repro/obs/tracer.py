"""Hierarchical span tracer with a true no-op disabled mode.

The SoCL pipeline is instrumented against the *ambient* tracer —
:func:`current_tracer` — which defaults to a singleton
:class:`NullTracer` whose spans and counters do nothing and allocate
nothing, so uninstrumented runs pay only an attribute lookup per call
site.  Enabling tracing is scoped, not global:

>>> from repro.obs import Tracer, use_tracer
>>> tracer = Tracer("demo")
>>> with use_tracer(tracer):
...     with tracer.span("outer"):
...         with tracer.span("inner", detail=1):
...             pass
>>> [s.name for s in tracer.roots]
['outer']

Spans nest via an explicit stack (``tracer.span`` inside a ``with``
block attaches to the innermost open span), carry free-form attributes,
and record wall-clock durations from ``time.perf_counter`` — the same
clock as :class:`repro.utils.timing.Stopwatch`, so span durations and
the legacy ``stage_times`` agree.  Counters/gauges live in the
attached :class:`~repro.obs.metrics.MetricsRegistry`.

Process-pool workers cannot share the parent's tracer; they build their
own, and the parent folds the picklable :meth:`Tracer.payload` back in
with :meth:`Tracer.merge_payload` (counters add, spans graft under a
per-worker root).  Span structure is **not** thread-safe — only the
owning thread should open spans; counter increments from the ζ-sweep
thread pool are aggregated by the caller after the join instead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.obs.metrics import MetricsRegistry


@dataclass
class Span:
    """One timed, attributed node of the trace tree.

    ``start`` is seconds since the owning tracer's epoch; ``duration``
    is filled when the span's ``with`` block exits.
    """

    name: str
    attrs: dict = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def set_attr(self, **attrs) -> None:
        """Merge keyword attributes into the span's attrs dict."""
        self.attrs.update(attrs)

    def total_child_time(self) -> float:
        """Sum of the direct children's durations (seconds)."""
        return sum(c.duration for c in self.children)

    def as_dict(self) -> dict:
        """Recursively serialize the span subtree to plain dicts."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start": self.start,
            "duration": self.duration,
            "children": [c.as_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span subtree serialized by :meth:`as_dict`."""
        return cls(
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            start=float(data.get("start", 0.0)),
            duration=float(data.get("duration", 0.0)),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


class _NullSpan:
    """Inert span: context manager and attribute sink that do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled-mode tracer: records nothing, allocates nothing.

    Every method is a constant-time no-op so instrumented hot paths can
    call it unconditionally; cold paths should still gate extra metric
    *computation* on :attr:`enabled`.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        """No-op span; returns a shared inert context manager."""
        return _NULL_SPAN

    def inc(self, name: str, value: Union[int, float] = 1) -> None:
        """No-op counter increment."""
        pass

    def set_gauge(self, name: str, value: float) -> None:
        """No-op gauge write."""
        pass

    def observe(self, name: str, value: float) -> None:
        """No-op histogram sample."""
        pass

    def observe_many(self, name: str, values) -> None:
        """No-op histogram bulk ingest."""
        pass

    def attach_span(self, span) -> None:
        """No-op span graft."""
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: Shared disabled-mode tracer (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()


class Tracer:
    """Enabled-mode tracer: span tree + metrics registry."""

    enabled = True

    def __init__(self, name: str = "trace"):
        self.name = name
        self.roots: list[Span] = []
        self.metrics = MetricsRegistry()
        #: Optional :class:`repro.obs.flight.FlightRecorder`; when set,
        #: its snapshots ride along in :func:`repro.obs.trace_records`.
        self.flight = None
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()

    # -- spans ----------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span of the innermost active span (or a root)."""
        sp = Span(name=name, attrs=dict(attrs))
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(sp)
        self._stack.append(sp)
        t0 = time.perf_counter()
        sp.start = t0 - self._epoch
        try:
            yield sp
        finally:
            sp.duration = time.perf_counter() - t0
            self._stack.pop()

    def attach_span(self, span: Span) -> None:
        """Graft a pre-built span subtree under the innermost open span.

        Used to replay timing recorded *outside* the tracer's lexical
        span stack — e.g. a shard's per-phase elapsed times accumulated
        across fixpoint rounds and emitted as one synthetic
        ``shard<k>`` subtree after the rounds finish.  With no span
        open, the subtree becomes a new root.
        """
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)

    # -- metrics --------------------------------------------------------
    def inc(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` (default 1) to the named counter."""
        self.metrics.inc(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        """Record a last-write-wins gauge observation."""
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Stream one sample into the named histogram."""
        self.metrics.observe(name, value)

    def observe_many(self, name: str, values) -> None:
        """Vectorized bulk ingest into the named histogram."""
        self.metrics.observe_many(name, values)

    @property
    def counters(self) -> dict[str, float]:
        """Name → total for every counter incremented so far."""
        return self.metrics.counters

    @property
    def gauges(self) -> dict[str, float]:
        """Name → last value for every gauge written so far."""
        return self.metrics.gauges

    @property
    def hists(self) -> dict:
        """Name → :class:`~repro.obs.hist.StreamingHistogram` recorded so far."""
        return self.metrics.hists

    # -- cross-process merge -------------------------------------------
    def payload(self) -> dict:
        """Picklable snapshot a pool worker ships back to the parent."""
        return {
            "name": self.name,
            "spans": [s.as_dict() for s in self.roots],
            **self.metrics.as_dict(),
        }

    def merge_payload(self, payload: Optional[dict]) -> None:
        """Fold a worker's :meth:`payload` into this tracer.

        Counters add, gauges last-write-win and histograms merge (see
        :meth:`repro.obs.metrics.MetricsRegistry.merge`); the worker's
        span forest is grafted under one synthetic root named after the
        worker so the merged tree keeps per-cell attribution.  When a
        span is open, the synthetic root nests under it (so a shard
        worker payload merged inside the ``replay`` span lands at
        ``slot<t>/replay/shard<k>``); otherwise it becomes a new root.
        """
        if not payload:
            return
        self.metrics.merge(payload)
        spans = [Span.from_dict(s) for s in payload.get("spans", [])]
        if spans:
            root = Span(
                name=payload.get("name", "worker"),
                start=min(s.start for s in spans),
                duration=sum(s.duration for s in spans),
                children=spans,
            )
            self.attach_span(root)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer({self.name!r}, {len(self.roots)} roots, "
            f"{len(self.metrics)} metrics)"
        )


#: Ambient tracer; the pipeline reads it via :func:`current_tracer`.
_CURRENT: ContextVar[Union[Tracer, NullTracer]] = ContextVar(
    "socl_tracer", default=NULL_TRACER
)


def current_tracer() -> Union[Tracer, NullTracer]:
    """The ambient tracer (the shared :data:`NULL_TRACER` when disabled)."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer: Union[Tracer, NullTracer]) -> Iterator[Union[Tracer, NullTracer]]:
    """Scope ``tracer`` as the ambient tracer for the enclosed block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


def activate_tracer(
    tracer: Union[Tracer, NullTracer]
) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` as the ambient tracer *unscoped*.

    For worker processes that enable/disable tracing via control
    messages (:class:`repro.utils.parallel.PipeWorkerPool`) rather than
    a lexical ``with`` block — in-process code should always prefer
    :func:`use_tracer`.  Returns the tracer for chaining.
    """
    _CURRENT.set(tracer)
    return tracer
