"""Flight recorder: ring-buffered runtime snapshots with bounded memory.

A long online simulation (1M users, thousands of slots) needs a
post-hoc answer to "what did the runtime look like around slot 1234?" —
RSS, shared-memory arena utilization, worker-pool state, warm-start hit
rate, fixpoint rounds.  :class:`FlightRecorder` keeps the last
``capacity`` per-slot snapshots in a fixed-size ring (older snapshots
are overwritten, ``dropped`` counts them), so memory stays flat no
matter how long the run is.

Snapshots are plain dicts and export as ``snapshot`` records in the
schema-2 trace file (see :mod:`repro.obs.export`); attach a recorder to
a tracer via ``tracer.flight = FlightRecorder()`` and
:func:`repro.obs.trace_records` emits them after the gauges.  The CLI
does this automatically for every ``--trace`` run, and
``repro report <trace.jsonl>`` renders the snapshot timeline.
"""

from __future__ import annotations

import os
import resource
import time
from typing import Iterator, Optional

#: Default ring capacity (snapshots kept before overwriting).
DEFAULT_CAPACITY = 1024

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_kb() -> int:
    """Resident-set size of this process in KiB.

    Reads ``/proc/self/statm`` (current RSS, Linux); falls back to
    ``ru_maxrss`` (peak RSS, portable) when procfs is unavailable.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * _PAGE_SIZE // 1024
    except (OSError, ValueError, IndexError):
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class FlightRecorder:
    """Fixed-memory ring buffer of per-slot runtime snapshots."""

    __slots__ = ("capacity", "dropped", "_ring", "_next", "_epoch")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.dropped = 0
        self._ring: list[Optional[dict]] = [None] * self.capacity
        self._next = 0
        self._epoch = time.perf_counter()

    def snapshot(self, slot: int, **fields) -> dict:
        """Record one snapshot for ``slot`` and return it.

        ``fields`` are free-form numeric runtime gauges (arena bytes,
        pool stats, warm-start hit rate, rounds …); ``rss_kb`` and the
        capture ``time`` (seconds since the recorder's creation) are
        added automatically.  The oldest snapshot is overwritten once
        the ring is full.
        """
        record = {
            "slot": int(slot),
            "time": time.perf_counter() - self._epoch,
            "data": {"rss_kb": float(current_rss_kb()), **fields},
        }
        idx = self._next % self.capacity
        if self._ring[idx] is not None:
            self.dropped += 1
        self._ring[idx] = record
        self._next += 1
        return record

    def __len__(self) -> int:
        return min(self._next, self.capacity)

    def records(self) -> Iterator[dict]:
        """Retained snapshots, oldest first."""
        if self._next <= self.capacity:
            ring = self._ring[: self._next]
        else:
            cut = self._next % self.capacity
            ring = self._ring[cut:] + self._ring[:cut]
        for record in ring:
            if record is not None:
                yield record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlightRecorder({len(self)}/{self.capacity} snapshots, "
            f"{self.dropped} dropped)"
        )
