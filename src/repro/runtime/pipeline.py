"""Pipelined slot execution: overlap replay with the next slot's solve.

The online simulator's slot loop is sequential by default: generate the
workload window, solve placement, dispatch replay, fold results in,
repeat.  Once replay runs on persistent shard workers (or even just a
vectorized flat replay), the main process sits idle while the slot
executes — and the workers sit idle while the main process solves.  The
pipelined executor hides one behind the other: slot *t*'s replay is
dispatched to a background thread, and while it is in flight the main
process runs slot *t+1*'s speculative prefix (window generation,
problem build, outage degrade, ``solver.solve``).  The sequential
suffix — autoscaler ``observe``/``adjust``, pool placement updates,
metrics fold-in — waits until replay *t* joins.

Two primitives live here:

``AsyncSlotReplay``
    A one-shot background execution handle.  The replay callable runs
    on a daemon thread under a *private* tracer (the ambient tracer's
    span stack is not thread-safe, and ``contextvars`` do not propagate
    into manually created threads); the coordinator merges the private
    tracer's metrics and grafts its spans at join time.

``resolve_pipeline``
    Resolves the ``pipeline="auto"`` mode: pipelining pays when replay
    leaves the main process (a persistent ``process``/``shm`` shard
    executor), and costs only thread overhead otherwise.

Bit-identity contract: pipelining reorders *wall-clock* work, never
*logical* work.  All RNG draws, solver calls, and state mutations happen
in exactly the serial order — see ``docs/RUNTIME.md`` ("Pipelined slot
execution") for the stage dependency argument.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.obs import NULL_TRACER, Tracer, use_tracer

__all__ = ["AsyncSlotReplay", "resolve_pipeline", "PIPELINE_MODES"]

PIPELINE_MODES = ("on", "off", "auto")


class AsyncSlotReplay:
    """Run a slot's execute stage on a background thread.

    ``fn`` is a zero-argument callable (close over the slot state when
    constructing it).  It runs under ``tracer`` — pass a private
    :class:`~repro.obs.Tracer` (merged by the caller at join) or
    ``NULL_TRACER`` when tracing is disabled; never the ambient tracer,
    whose span stack is not thread-safe.

    :meth:`join` is idempotent, re-raises any exception from ``fn``,
    and returns its result.  ``elapsed`` is the thread's wall time in
    seconds (valid after join).
    """

    def __init__(self, fn: Callable[[], object], tracer: Optional[Tracer] = None):
        self._fn = fn
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._result: object = None
        self._error: Optional[BaseException] = None
        self.elapsed = 0.0
        self._joined = False
        self._thread = threading.Thread(
            target=self._run, name="slot-replay", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        start = time.perf_counter()
        try:
            with use_tracer(self.tracer):
                self._result = self._fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised at join
            self._error = exc
        finally:
            self.elapsed = time.perf_counter() - start

    def done(self) -> bool:
        """Whether the background work has finished (join still required)."""
        return not self._thread.is_alive()

    def join(self) -> object:
        """Wait for completion; re-raise its error or return its result."""
        if not self._joined:
            self._thread.join()
            self._joined = True
        if self._error is not None:
            raise self._error
        return self._result


def resolve_pipeline(
    pipeline: str, n_regions: int, shard_executor: str, n_req: int
) -> bool:
    """Resolve a ``pipeline`` mode to a concrete on/off decision.

    ``"on"`` and ``"off"`` pass through.  ``"auto"`` enables pipelining
    only when a persistent out-of-process shard executor would be
    active — at least two regions and a resolved ``process``/``shm``
    engine (:func:`repro.runtime.shard.resolve_shard_executor`) — since
    overlapping with an in-process replay only adds GIL contention.
    """
    if pipeline not in PIPELINE_MODES:
        raise ValueError(
            f"pipeline must be one of {PIPELINE_MODES}, got {pipeline!r}"
        )
    if pipeline != "auto":
        return pipeline == "on"
    if n_regions < 2:
        return False
    from repro.runtime.shard import resolve_shard_executor

    return resolve_shard_executor(shard_executor, n_regions, n_req) in (
        "process",
        "shm",
    )
