"""Request-level fault injection and resilience policies.

:mod:`repro.runtime.failures` models *node* outages: a down node is
degraded out of the solvable state before the slot's provisioning runs.
Real serverless edge deployments also fail *within* a slot, at request
granularity — a backhaul link fades mid-transfer, a container crashes
between two invocations — and the provisioning algorithm only learns
about it one slot later.  This module supplies both halves of that
story:

* **Fault injection** — :class:`FaultInjector` draws a per-slot
  :class:`SlotFaults` realization (degraded links that slow transfers,
  instance crashes that reject invocations until a restart) from a
  seeded, *slot-addressable* stream: the faults of slot ``t`` depend
  only on ``(seed, t)`` and the slot's placement, never on how many
  random numbers earlier slots consumed.
* **Resilience policy** — :class:`ResiliencePolicy` configures how the
  simulated cluster reacts: per-request timeouts derived from the QoS
  deadline ``D_h^max`` (Eq. 4), bounded retry with exponential backoff,
  hedged re-routing to the next-best surviving instance (via the
  incremental :class:`repro.model.engine.BatchRouter`), and graceful
  degradation through :func:`shed_indices` (drop the lowest-priority
  requests when the surviving capacity cannot carry the slot).

With no injector and no policy the runtime behaves exactly as before —
the resilience layer is opt-in and bit-identically absent by default
(``tests/test_runtime_resilience.py`` enforces this).  The full runtime
model, including these semantics, is documented in docs/RUNTIME.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.model.instance import ProblemInstance
from repro.model.placement import Placement
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)


@dataclass(frozen=True)
class FaultConfig:
    """Intensity knobs of the request-level fault process.

    ``link_fail_prob`` — per-slot probability that an (unordered) pair
    of edge nodes has its virtual link degraded for the whole slot;
    ``link_slowdown`` — transfer-time multiplier over a degraded link
    (≥ 1); ``crash_prob`` — per-slot probability that a provisioned
    instance crashes at a uniform time within the slot;
    ``restart_delay`` — seconds a crashed instance rejects invocations
    before its container is restarted (it restarts *cold*).
    """

    link_fail_prob: float = 0.0
    link_slowdown: float = 4.0
    crash_prob: float = 0.0
    restart_delay: float = 10.0

    def __post_init__(self) -> None:
        check_probability("link_fail_prob", self.link_fail_prob)
        check_probability("crash_prob", self.crash_prob)
        check_non_negative("restart_delay", self.restart_delay)
        if self.link_slowdown < 1.0:
            raise ValueError(
                f"link_slowdown must be >= 1, got {self.link_slowdown}"
            )

    @classmethod
    def at_intensity(
        cls,
        intensity: float,
        link_slowdown: float = 4.0,
        restart_delay: float = 10.0,
    ) -> "FaultConfig":
        """Single-knob scaling used by the resilience sweep.

        ``intensity`` ∈ [0, 1] maps to ``crash_prob = intensity`` and
        ``link_fail_prob = intensity / 2`` — at 0 the injector draws no
        faults at all and the runtime is bit-identical to a run without
        an injector.
        """
        check_probability("intensity", intensity)
        return cls(
            link_fail_prob=intensity / 2.0,
            link_slowdown=link_slowdown,
            crash_prob=intensity,
            restart_delay=restart_delay,
        )


class SlotFaults:
    """One slot's realized faults: degraded links + instance crashes."""

    def __init__(
        self,
        config: FaultConfig,
        n_edge_nodes: int,
        degraded_links: frozenset[tuple[int, int]],
        crashes: Mapping[tuple[int, int], float],
    ):
        self.config = config
        self.n_edge_nodes = int(n_edge_nodes)
        #: unordered ``(u, v)`` edge-node pairs with ``u < v``
        self.degraded_links = frozenset(degraded_links)
        #: ``(service, node) -> crash time`` (seconds into the slot)
        self.crashes = dict(crashes)

    @property
    def n_degraded_links(self) -> int:
        """Number of degraded virtual links this slot."""
        return len(self.degraded_links)

    @property
    def n_crashes(self) -> int:
        """Number of instance-crash events this slot."""
        return len(self.crashes)

    def link_factor(self, u: int, v: int) -> float:
        """Transfer-time multiplier for a transfer between ``u`` and ``v``.

        1.0 for healthy links, same-node transfers, and any leg touching
        the cloud (the WAN detour cost is already modelled separately and
        is not subject to edge-radio degradation).
        """
        if u == v or u >= self.n_edge_nodes or v >= self.n_edge_nodes:
            return 1.0
        key = (u, v) if u < v else (v, u)
        return self.config.link_slowdown if key in self.degraded_links else 1.0

    def crashed(self, service: int, node: int, t: float) -> bool:
        """Is the ``(service, node)`` instance down at slot time ``t``?

        An instance is down from its crash time until the restart
        completes (``crash_time + restart_delay``); after the restart it
        serves again (cold — the pool's warmth is evicted on crash).
        """
        tau = self.crashes.get((service, node))
        return tau is not None and tau <= t < tau + self.config.restart_delay


class FaultInjector:
    """Seeded, slot-addressable generator of :class:`SlotFaults`.

    The realization for slot ``t`` is drawn from
    ``SeedSequence([seed, t])``, so it is reproducible per slot and
    independent of the simulator's own RNG streams: enabling fault
    injection never perturbs workload, mobility or arrival randomness.
    """

    def __init__(self, config: FaultConfig = FaultConfig(), seed: int = 0):
        self.config = config
        self.seed = int(seed)

    def for_slot(
        self, slot: int, placement: Placement, horizon: float
    ) -> SlotFaults:
        """Draw the faults of ``slot`` against ``placement``.

        ``horizon`` is the slot length in seconds; crash times are
        uniform in ``[0, horizon)``.  Links are drawn first, then
        crashes over the placement's sorted ``(service, node)`` pairs,
        so the realization is a pure function of (seed, slot,
        placement).
        """
        check_non_negative("slot", slot)
        check_positive("horizon", horizon)
        cfg = self.config
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, int(slot)]))
        n = placement.n_servers

        degraded: set[tuple[int, int]] = set()
        if cfg.link_fail_prob > 0.0 and n > 1:
            roll = rng.random((n, n))
            iu, ju = np.triu_indices(n, k=1)
            hit = roll[iu, ju] < cfg.link_fail_prob
            degraded = {
                (int(u), int(v)) for u, v in zip(iu[hit], ju[hit])
            }

        crashes: dict[tuple[int, int], float] = {}
        if cfg.crash_prob > 0.0:
            pairs = placement.pairs()  # sorted
            if pairs:
                roll = rng.random(len(pairs))
                times = rng.uniform(0.0, horizon, size=len(pairs))
                for idx, pair in enumerate(pairs):
                    if roll[idx] < cfg.crash_prob:
                        crashes[pair] = float(times[idx])
        return SlotFaults(cfg, n, frozenset(degraded), crashes)


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the simulated cluster reacts to request-level faults.

    * **Timeout** — every request gets a completion deadline of
      ``timeout_factor × D_h^max`` (its Eq.-4 deadline); requests with
      an infinite deadline use ``default_timeout``.  A request that has
      not finished by then is recorded as ``status == "timeout"``.
    * **Retry** — an invocation rejected by a crashed instance is
      retried after exponential backoff
      (``backoff_base · backoff_factor^attempt``), at most
      ``max_retries`` times per hop-host.
    * **Hedging** — once retries are exhausted, the crashed instance is
      removed from a live placement copy and the request's remaining
      chain suffix is re-routed to the next-best surviving instances via
      the incremental :class:`repro.model.engine.BatchRouter` (cloud as
      the last resort).
    * **Shedding** — before replay, :func:`shed_indices` drops the
      lowest-priority requests whenever the offered work exceeds
      ``shed_utilization ×`` the surviving compute capacity, so overload
      degrades gracefully instead of timing every request out.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    timeout_factor: float = 3.0
    default_timeout: float = 120.0
    hedging: bool = True
    shedding: bool = True
    shed_utilization: float = 1.5

    def __post_init__(self) -> None:
        check_non_negative("max_retries", self.max_retries)
        check_positive("backoff_base", self.backoff_base)
        check_positive("timeout_factor", self.timeout_factor)
        check_positive("default_timeout", self.default_timeout)
        check_positive("shed_utilization", self.shed_utilization)
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def timeout_for(self, deadline: float) -> float:
        """Per-request timeout derived from the Eq.-4 deadline."""
        if np.isfinite(deadline):
            return self.timeout_factor * float(deadline)
        return self.default_timeout

    def backoff(self, attempt: int) -> float:
        """Backoff delay before retry number ``attempt + 1``."""
        check_non_negative("attempt", attempt)
        return self.backoff_base * self.backoff_factor**attempt


def shed_indices(
    instance: ProblemInstance,
    policy: ResiliencePolicy,
    capacity_gflops: float,
) -> np.ndarray:
    """Lowest-priority requests to shed so the slot stays feasible.

    ``capacity_gflops`` is the surviving compute capacity of the slot
    (Σ node compute × cores × slot length — outage-degraded nodes
    contribute ≈ 0).  While the total requested work exceeds
    ``policy.shed_utilization × capacity``, requests are shed in
    priority order: largest deadline first (most latency-tolerant, i.e.
    lowest priority), then largest compute demand, then highest index —
    a deterministic order, so shedding is reproducible.

    Returns the sorted array of shed request indices (empty when the
    slot fits, or when shedding is disabled on the policy).
    """
    check_positive("capacity_gflops", capacity_gflops)
    if not policy.shedding or instance.n_requests == 0:
        return np.empty(0, dtype=np.int64)
    q = instance.service_compute
    chain_safe = np.where(instance.chain_mask, instance.chain_matrix, 0)
    work = np.where(instance.chain_mask, q[chain_safe], 0.0).sum(axis=1)
    budget = policy.shed_utilization * float(capacity_gflops)
    total = float(work.sum())
    if total <= budget:
        return np.empty(0, dtype=np.int64)
    deadlines = instance.deadlines
    # shed order: least urgent, then heaviest, then newest
    order = sorted(
        range(instance.n_requests),
        key=lambda h: (-deadlines[h], -work[h], -h),
    )
    shed: list[int] = []
    for h in order:
        if total <= budget:
            break
        shed.append(h)
        total -= float(work[h])
    return np.array(sorted(shed), dtype=np.int64)
