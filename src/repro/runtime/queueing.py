"""Analytic queueing formulas for validating the DES cluster.

The simulated cluster's nodes are FIFO multi-core servers with
deterministic per-invocation service times; under Poisson arrivals a
single-core node is exactly an **M/D/1** queue and a multi-core node an
**M/D/c**.  These closed forms let the test suite check the simulator's
queueing behaviour against theory instead of against itself
(``tests/test_runtime_queueing.py``), which is what makes the Fig. 9/10
substitution credible:

* :func:`mm1_mean_wait` — M/M/1 queueing delay ``ρ/(μ−λ)``;
* :func:`md1_mean_wait` — M/D/1 via Pollaczek–Khinchine with zero
  service-time variance, ``ρ/(2μ(1−ρ))``;
* :func:`pollaczek_khinchine_wait` — general M/G/1;
* :func:`erlang_c` / :func:`mmc_mean_wait` — M/M/c delay probability and
  mean wait;
* :func:`utilization` — offered load ``ρ = λ/(c·μ)``;
* :func:`expected_attempts` / :func:`markov_availability` — closed forms
  for the resilience layer: retry load amplification under bounded
  retry, and the stationary availability of the outage Markov chain.

All waits are *queueing* delays (time in buffer, excluding service).
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive


def utilization(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    """Offered load ``ρ = λ / (c·μ)``."""
    check_positive("arrival_rate", arrival_rate)
    check_positive("service_rate", service_rate)
    check_positive("servers", servers)
    return arrival_rate / (servers * service_rate)


def _require_stable(rho: float) -> None:
    if rho >= 1.0:
        raise ValueError(f"queue is unstable at utilization {rho:.3f} >= 1")


def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean M/M/1 queueing delay ``W_q = ρ / (μ − λ)``."""
    rho = utilization(arrival_rate, service_rate)
    _require_stable(rho)
    return rho / (service_rate - arrival_rate)


def pollaczek_khinchine_wait(
    arrival_rate: float, mean_service: float, service_cv2: float
) -> float:
    """Mean M/G/1 queueing delay (Pollaczek–Khinchine).

    ``W_q = λ·E[S²] / (2(1−ρ)) = ρ·E[S]·(1+Cv²) / (2(1−ρ))`` with
    ``Cv²`` the squared coefficient of variation of service time.
    """
    check_positive("arrival_rate", arrival_rate)
    check_positive("mean_service", mean_service)
    if service_cv2 < 0:
        raise ValueError(f"service_cv2 must be non-negative, got {service_cv2}")
    rho = arrival_rate * mean_service
    _require_stable(rho)
    return rho * mean_service * (1.0 + service_cv2) / (2.0 * (1.0 - rho))


def md1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean M/D/1 queueing delay: PK with deterministic service."""
    check_positive("service_rate", service_rate)
    return pollaczek_khinchine_wait(arrival_rate, 1.0 / service_rate, 0.0)


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Erlang-C probability that an arriving M/M/c job must wait."""
    rho = utilization(arrival_rate, service_rate, servers)
    _require_stable(rho)
    a = arrival_rate / service_rate  # offered traffic in Erlangs
    c = int(servers)
    summation = sum(a**k / math.factorial(k) for k in range(c))
    top = a**c / (math.factorial(c) * (1.0 - rho))
    return top / (summation + top)


def mmc_mean_wait(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean M/M/c queueing delay ``W_q = C(c, a) / (c·μ − λ)``."""
    p_wait = erlang_c(arrival_rate, service_rate, servers)
    return p_wait / (servers * service_rate - arrival_rate)


def mdc_mean_wait_approx(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Mean M/D/c queueing delay (Cosmetatos-style approximation).

    Uses the standard heavy-traffic scaling ``W_q(M/D/c) ≈ ½·W_q(M/M/c)``
    — exact for c = 1 and within a few percent for small c at moderate
    load, which is all the validation tests need.
    """
    return 0.5 * mmc_mean_wait(arrival_rate, service_rate, servers)


def expected_attempts(fail_prob: float, max_retries: int) -> float:
    """Expected invocation attempts per hop under bounded retry.

    With per-attempt failure probability ``p`` and at most ``r``
    retries, the attempt count is truncated-geometric:
    ``E[A] = Σ_{k=0}^{r} p^k = (1 − p^{r+1}) / (1 − p)`` — the load
    amplification the retry policy injects into the cluster, used to
    sanity-check the resilience experiment's retry counters.
    """
    if not 0.0 <= fail_prob <= 1.0:
        raise ValueError(f"fail_prob must be in [0, 1], got {fail_prob}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be non-negative, got {max_retries}")
    if fail_prob == 1.0:
        return float(max_retries + 1)
    return (1.0 - fail_prob ** (max_retries + 1)) / (1.0 - fail_prob)


def markov_availability(fail_prob: float, repair_prob: float) -> float:
    """Steady-state up-probability of the two-state outage Markov chain.

    The :class:`repro.runtime.failures.OutageSchedule` node process has
    per-slot fail probability ``λ`` (up → down) and repair probability
    ``μ`` (down → up); its stationary availability is ``μ / (λ + μ)``.
    ``OutageSchedule.availability`` converges to this closed form.
    """
    if not 0.0 <= fail_prob <= 1.0:
        raise ValueError(f"fail_prob must be in [0, 1], got {fail_prob}")
    if not 0.0 < repair_prob <= 1.0:
        raise ValueError(f"repair_prob must be in (0, 1], got {repair_prob}")
    return repair_prob / (fail_prob + repair_prob)
