"""Serverless instance lifecycle: cold starts and warm keep-alive.

In serverless edge computing an invocation pays a **cold-start** penalty
when the target function instance is not resident; a recently used
instance stays **warm** for a keep-alive window and serves instantly.
The paper's storage-planning trade-off — "allowing more warm instances
in the nearby area" — is observable through this model: placements that
concentrate demand keep instances warm, while scattered low-traffic
instances repeatedly pay cold starts.

:class:`InstancePool` tracks, per (service, node) pair, whether the
instance is provisioned (by the placement), and when it was last
invoked; :meth:`InstancePool.invoke` returns the startup penalty to add
to the request's processing time.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.model.placement import Placement
from repro.utils.validation import check_non_negative


class InstanceState(Enum):
    """Lifecycle state of a (service, node) instance."""

    ABSENT = "absent"  # not provisioned on this node
    COLD = "cold"  # provisioned but not resident in memory
    WARM = "warm"  # resident; invocation is penalty-free


@dataclass(frozen=True)
class ServerlessConfig:
    """Cold-start model parameters.

    ``cold_start`` — seconds added to the first invocation of a cold
    instance (container pull + init); ``keep_alive`` — idle window after
    which a warm instance is reclaimed.
    """

    cold_start: float = 0.5
    keep_alive: float = 300.0

    def __post_init__(self) -> None:
        check_non_negative("cold_start", self.cold_start)
        check_non_negative("keep_alive", self.keep_alive)


class InstancePool:
    """Warm/cold bookkeeping over a placement."""

    def __init__(self, placement: Placement, config: ServerlessConfig = ServerlessConfig()):
        self.config = config
        self._provisioned: set[tuple[int, int]] = set(placement.pairs())
        self._last_used: dict[tuple[int, int], float] = {}
        self.cold_starts = 0
        self.warm_hits = 0
        self.evictions = 0
        self.prewarms = 0

    def update_placement(self, placement: Placement) -> None:
        """Apply a new placement: removed instances are evicted, new ones
        start cold; surviving instances keep their warmth."""
        new = set(placement.pairs())
        for key in list(self._last_used):
            if key not in new:
                del self._last_used[key]
        self._provisioned = new

    def state(self, service: int, node: int, now: float) -> InstanceState:
        """Lifecycle state of (service, node) at time ``now`` — ABSENT, COLD, or WARM depending on provisioning and keep-alive."""
        key = (service, node)
        if key not in self._provisioned:
            return InstanceState.ABSENT
        last = self._last_used.get(key)
        if last is not None and now - last <= self.config.keep_alive:
            return InstanceState.WARM
        return InstanceState.COLD

    def invoke(self, service: int, node: int, now: float) -> float:
        """Record an invocation; returns the startup penalty in seconds.

        Invoking an instance that is not provisioned raises — the caller
        (cluster) must route cloud fallbacks explicitly.
        """
        state = self.state(service, node, now)
        if state is InstanceState.ABSENT:
            raise ValueError(
                f"service {service} is not provisioned on node {node}"
            )
        self._last_used[(service, node)] = now
        if state is InstanceState.COLD:
            self.cold_starts += 1
            return self.config.cold_start
        self.warm_hits += 1
        return 0.0

    def is_provisioned(self, service: int, node: int) -> bool:
        """Whether ``(service, node)`` is provisioned by the placement."""
        return (service, node) in self._provisioned

    def last_used(self, service: int, node: int) -> Optional[float]:
        """Last invocation time of ``(service, node)``, or ``None`` if never."""
        return self._last_used.get((service, node))

    def commit_batch(
        self,
        last_used: dict[tuple[int, int], float],
        n_cold: int,
        n_warm: int,
    ) -> None:
        """Apply the aggregate effect of a batch of invocations.

        Used by the vectorized replay (:mod:`repro.runtime.replay`),
        which resolves each invocation's warm/cold state in bulk:
        ``last_used`` maps each touched ``(service, node)`` pair to its
        final invocation time, and ``n_cold`` / ``n_warm`` increment the
        counters exactly as the equivalent :meth:`invoke` sequence
        would.  The caller must only include provisioned pairs.
        """
        self._last_used.update(last_used)
        self.cold_starts += n_cold
        self.warm_hits += n_warm

    def prewarm(self, service: int, node: int, now: float) -> None:
        """Warm an instance outside the request path (autoscaler keep-warm).

        The platform pays the container init in the background, so the
        instance's next invocation within the keep-alive window is a
        warm hit instead of a cold start.  Raises for pairs the
        placement does not provision; counted in :attr:`prewarms`.
        """
        if (service, node) not in self._provisioned:
            raise ValueError(
                f"service {service} is not provisioned on node {node}"
            )
        self._last_used[(service, node)] = now
        self.prewarms += 1

    def evict(self, service: int, node: int) -> None:
        """Forget an instance's warmth (container crash or forced restart).

        The instance stays provisioned — the placement did not change —
        but its next invocation pays a fresh cold start.  No-op for
        pairs that were never warm; counted in :attr:`evictions`.
        """
        if self._last_used.pop((service, node), None) is not None:
            self.evictions += 1

    @property
    def n_provisioned(self) -> int:
        """Number of provisioned (service, node) instances."""
        return len(self._provisioned)

    def warm_count(self, now: float) -> int:
        """Number of currently warm instances."""
        return sum(
            1
            for key in self._provisioned
            if (last := self._last_used.get(key)) is not None
            and now - last <= self.config.keep_alive
        )
