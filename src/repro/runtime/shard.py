"""Region-sharded streaming slot replay: the million-user scale path.

:func:`repro.runtime.replay.replay_slot` is the single-process
*reference* engine — one flat fixpoint over every node and request in
the slot.  This module partitions that fixpoint geographically, the way
SoCL's National Stadium setting naturally shards: edge nodes are
grouped into **regions** (:class:`RegionMap`), each region's state —
node FIFO cores, the instance-pool warmth groups on its nodes, its
users' requests, optionally the sticky-routing preferences of its homes
— is isolated into a :class:`RegionShard`, and the shards run the
*same* Jacobi rounds as the reference engine, reconciling cross-region
chain hops at the shard boundary with two bounded exchanges per round:

1. **ready exchange** — each shard propagates its own requests' chains
   and exports the ready times of invocations that land on another
   region's nodes;
2. **start exchange** — each shard simulates its own nodes' pool
   warmth and FIFO queues (over local *and* imported invocations) and
   exports the resulting start/penalty values back to the owning
   shards.

Because every shard applies the exact arithmetic of the reference
engine to the exact same values in the exact same round schedule, the
iterates — and therefore the converged fixpoint, the tie/decline
decisions and every committed output — are **bit-identical** to
:func:`replay_slot`; a Hypothesis suite enforces this.

Within each shard the FIFO core scan is *vectorized*: a conflict-free
screen (exact max/min prefix dynamics of the two-core claim rule)
accepts uncontended stretches in O(1) NumPy passes and only the
congested segments fall back to the reference Python scan, which is
what lets a single worker absorb hundreds of thousands of invocations
per round (``benchmarks/bench_shard.py``).

Shards execute either **serially** in-process (the default — correct
everywhere, no IPC) or on a **process pool** of persistent per-shard
workers (:class:`repro.utils.parallel.PipeWorkerPool`, sized with the
PR 2 harness helpers), where each worker holds only its shard's slice
of the slot — this is what keeps coordinator memory flat as users
grow.  Telemetry counters (``runtime.shard.*``) are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.obs.tracer import Span, current_tracer
from repro.model.instance import ProblemInstance
from repro.model.placement import Placement, Routing
from repro.runtime.replay import (
    DEFAULT_MAX_ROUNDS,
    ReplayPlan,
    ReplayResult,
    WarmStartCache,
    build_replay_plan,
    empty_result,
)
from repro.runtime.serverless import InstancePool
from repro.utils.validation import check_positive


# ---------------------------------------------------------------------------
# Region partitioning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionMap:
    """Assignment of edge nodes to ``n_regions`` geographic regions.

    ``regions[v]`` is the region id of node ``v``.  Regions may be
    empty (a valid shard with no nodes); every node belongs to exactly
    one region.  The cloud pseudo-node is not part of any region —
    cloud stages never queue, so they stay with the request's owner.
    """

    regions: np.ndarray
    n_regions: int

    def __post_init__(self) -> None:
        check_positive("n_regions", self.n_regions)
        regions = np.asarray(self.regions, dtype=np.int64)
        object.__setattr__(self, "regions", regions)
        if regions.ndim != 1:
            raise ValueError(f"regions must be 1-D, got shape {regions.shape}")
        if regions.size and (
            regions.min() < 0 or regions.max() >= self.n_regions
        ):
            raise ValueError(
                f"region ids must lie in [0, {self.n_regions}), got "
                f"[{regions.min()}, {regions.max()}]"
            )

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered by the map (``regions.size``)."""
        return int(self.regions.size)

    def nodes_of(self, region: int) -> np.ndarray:
        """Node indices belonging to ``region`` (ascending)."""
        return np.nonzero(self.regions == region)[0]

    @classmethod
    def contiguous(cls, n_nodes: int, n_regions: int) -> "RegionMap":
        """Balanced contiguous blocks of node indices."""
        check_positive("n_nodes", n_nodes)
        check_positive("n_regions", n_regions)
        n_regions = min(n_regions, n_nodes)
        bounds = np.linspace(0, n_nodes, n_regions + 1).astype(np.int64)
        regions = np.empty(n_nodes, dtype=np.int64)
        for r in range(n_regions):
            regions[bounds[r] : bounds[r + 1]] = r
        return cls(regions=regions, n_regions=n_regions)

    @classmethod
    def from_positions(
        cls, positions: np.ndarray, n_regions: int
    ) -> "RegionMap":
        """Angular sectors around the centroid — the stadium's natural
        partition: each region is a wedge of cells around the venue."""
        check_positive("n_regions", n_regions)
        pos = np.asarray(positions, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {pos.shape}")
        n_regions = min(n_regions, max(1, pos.shape[0]))
        center = pos.mean(axis=0)
        ang = np.arctan2(pos[:, 1] - center[1], pos[:, 0] - center[0])
        # rank nodes by angle and cut into equal arcs so regions stay
        # balanced even when the angular density is lopsided
        order = np.argsort(ang, kind="stable")
        regions = np.empty(pos.shape[0], dtype=np.int64)
        bounds = np.linspace(0, pos.shape[0], n_regions + 1).astype(np.int64)
        for r in range(n_regions):
            regions[order[bounds[r] : bounds[r + 1]]] = r
        return cls(regions=regions, n_regions=n_regions)


# ---------------------------------------------------------------------------
# Exact vectorized FIFO kernel
# ---------------------------------------------------------------------------
#
# The reference engine walks each node's (ready-sorted) invocations in a
# Python loop, claiming the earliest-free core.  That loop has a closed
# pair form: claiming always *replaces the minimum* of the core-free
# pair, so the pair before job ``k`` is exactly ``{max(0, F[0..k-2]),
# F[k-1]}`` — congested or not.  Job ``k``'s start is therefore
#
#     start[k] = max(admit[k], min(cummax-lagged(F)[k], F[k-1]))
#     F[k]     = start[k] + work[k]
#
# a fixpoint in ``F`` whose iterates use only the event loop's own
# float ops (max / min / one add), so the converged solution is
# bit-identical to the reference scan.  From *any* initial vector, each
# NumPy sweep extends the self-consistent prefix past at least one more
# position: once the values before the sweep's first change are stable
# they are computed only from each other and the seeds, hence final.
# The window therefore shrinks from the left every sweep, and a good
# warm start (the previous round's starts) converges in one or two
# sweeps.  A cap hands pathological nodes to the reference scan (exact
# either way).

#: Fixpoint sweeps per block before ``_fifo_starts`` falls back to the
#: reference scan.  Each sweep resolves at least one more link of the
#: longest congestion cascade; realistic slots need single digits.
FIFO_SWEEP_CAP = 96

#: Block length for the causal block-by-block solve in
#: ``_fifo_starts``: large enough to amortize NumPy call overhead,
#: small enough that a deep cascade only re-sweeps its own block.
FIFO_BLOCK = 4096

#: Lockstep iterations before ``_fifo_patch_many`` hands a span to the
#: scalar walk.  Spans typically rejoin within a few positions of their
#: width; only a deep cascade outlives this, and the scalar walk (then
#: the blocked solve) remains exact for those.
_PATCH_LOCKSTEP_CAP = 192


def _fifo_starts(
    admit: np.ndarray,
    work: np.ndarray,
    cores: int,
    init: Optional[np.ndarray] = None,
    lo0: int = 0,
) -> np.ndarray:
    """Exact FIFO start times for one node's claim-ordered invocations.

    ``admit``/``work`` are aligned with the claim order (ready-sorted).
    ``init`` optionally seeds the fixpoint (e.g. the previous round's
    starts for these invocations in their new claim order) — any vector
    is sound, a close one converges in a sweep or two.  ``lo0`` asserts
    that ``init[:lo0]`` is already final (admits before ``lo0`` are
    unchanged since the init converged, so that prefix is the unique
    event-loop solution); the sweep window then starts at ``lo0``.
    Bit-identical to the reference Python scan of
    :func:`repro.runtime.replay.replay_slot`.
    """
    n = int(admit.size)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if cores >= 3 or n < 32:
        starts, _ = _fifo_reference(admit, work, cores)
        return starts
    starts = admit.copy() if init is None else init.astype(np.float64, copy=True)
    two = cores == 2
    lo = int(lo0) if init is not None else 0
    if lo >= n:
        return starts
    if lo > 0:
        # re-seed from the finalized prefix's finish times
        s_fprev = float(starts[lo - 1] + work[lo - 1])  # F[lo-1]
        s_kept = (  # max(0, F[0..lo-2])
            float(np.max(starts[: lo - 1] + work[: lo - 1]))
            if lo >= 2
            else 0.0
        )
    else:
        s_kept = 0.0  # max(0, F[0..lo-2]) over the finalized prefix
        s_fprev = 0.0  # F[lo-1]
    # The recurrence is strictly causal (position k reads only j < k),
    # so a converged block is final and the solve proceeds block by
    # block: one deep congestion cascade then re-sweeps only its own
    # block, not the whole remaining array.
    while True:
        hi = n if n - lo <= 2 * FIFO_BLOCK else lo + FIFO_BLOCK
        converged = False
        for _ in range(FIFO_SWEEP_CAP):
            a = admit[lo:hi]
            w = work[lo:hi]
            cur = starts[lo:hi]
            m = hi - lo
            F = cur + w
            fprev = np.empty(m)
            fprev[0] = s_fprev
            fprev[1:] = F[:-1]
            if two:
                s_max = s_kept if s_kept > s_fprev else s_fprev
                kept = np.empty(m)
                kept[0] = s_kept
                if m > 1:
                    kept[1] = s_max
                cm = None
                if m > 2:
                    cm = np.maximum.accumulate(F[: m - 2])
                    np.maximum(cm, s_max, out=kept[2:])
                new = np.maximum(a, np.minimum(kept, fprev))
            else:
                new = np.maximum(a, fprev)
            diff = new != cur
            d0 = int(np.argmax(diff))
            if not diff[d0]:
                converged = True
                break
            starts[lo + d0 : hi] = new[d0:]
            if d0:
                # positions before the first change are now final:
                # advance the window, re-seed from their finish times
                if two:
                    if d0 == 1:
                        s_kept = s_max
                    else:
                        assert cm is not None
                        c = float(cm[d0 - 2])
                        s_kept = c if c > s_max else s_max
                s_fprev = float(F[d0 - 1])
                lo += d0
        if not converged:
            starts, _ = _fifo_reference(admit, work, cores)
            return starts
        if hi >= n:
            return starts
        # block finalized: roll the seeds forward across it
        Ff = starts[lo:hi] + work[lo:hi]
        s_max = s_kept if s_kept > s_fprev else s_fprev
        if Ff.size > 1:
            bmx = float(np.max(Ff[:-1]))
            if bmx > s_max:
                s_max = bmx
        s_kept = s_max
        s_fprev = float(Ff[-1])
        lo = hi


def _fifo_reference(
    admit: np.ndarray, work: np.ndarray, cores: int
) -> tuple[np.ndarray, list[float]]:
    """The reference heap scan (any core count): starts and core_free."""
    n = int(admit.size)
    starts = np.empty(n, dtype=np.float64)
    heap = [(0.0, c) for c in range(cores)]
    free = [0.0] * cores
    for i, (a, w) in enumerate(zip(admit.tolist(), work.tolist())):
        x, c = heapq.heappop(heap)
        st = a if a > x else x
        fin = st + w
        heapq.heappush(heap, (fin, c))
        free[c] = fin
        starts[i] = st
    return starts, free


def _fifo_patch(
    admit: np.ndarray,
    work: np.ndarray,
    starts: np.ndarray,
    P: Optional[np.ndarray],
    cores: int,
    span_lo: np.ndarray,
    span_hi: np.ndarray,
) -> Optional[list[int]]:
    """Exactly repair the FIFO fixpoint around the affected spans.

    ``starts`` holds the previous fixpoint everywhere except inside the
    given (inclusive, ascending, disjoint) spans, where admits or claim
    order changed.  The recurrence is strictly causal, so a single
    left-to-right *scalar walk* from each span computes final values
    directly — no fixpoint sweeps.  The walk carries ``kept = max(0,
    F[0..k-2])`` and ``fprev = F[k-1]`` as scalars, seeds them from the
    untouched prefix and the cached lagged prefix max ``P`` (``P[k] =
    max(0, F[0..k-1])``, maintained for ``cores == 2``), and stops at
    the first position past the span whose start and ``P`` entry both
    come out unchanged: from there on every input to every later
    position is unchanged, so the old fixpoint stands (earliest
    possible rejoin).  Pure Python float arithmetic — the same IEEE
    doubles as the reference event loop.  ``starts`` and ``P`` are
    updated in place; returns the changed positions, or ``None`` when
    the walk overran its budget (caller falls back to the blocked
    vectorized solve — exact either way, and partially written values
    are already final, so the fallback's warm init stays sound).
    """
    n = int(admit.size)
    two = cores == 2
    los = span_lo.tolist()
    his = span_hi.tolist()
    ns = len(los)
    si = 0
    done = 0  # positions < done are repaired and final
    changed: list[int] = []
    budget = 4 * int(np.sum(span_hi - span_lo + 1)) + 2048
    walked = 0
    while si < ns:
        a = los[si]
        bmax = his[si]
        si += 1
        if bmax < done:
            continue
        lo = a if a > done else done
        if lo > 0:
            fprev = float(starts[lo - 1]) + float(work[lo - 1])
            kept = float(P[lo - 1]) if two else 0.0
        else:
            fprev = 0.0
            kept = 0.0
        k = lo
        ch = bmax - k + 17  # first chunk just covers the span
        stop = False
        while not stop and k < n:
            if ch < 16:
                ch = 16
            elif ch > 4096:
                ch = 4096
            ke = min(n, k + ch)
            a_l = admit[k:ke].tolist()
            w_l = work[k:ke].tolist()
            s_l = starts[k:ke].tolist()
            p_l = P[k:ke].tolist() if two else None
            stbuf: list[float] = []
            pbuf: list[float] = []
            i = 0
            cl = ke - k
            while i < cl:
                kk = k + i
                while si < ns and los[si] <= kk:
                    if his[si] > bmax:
                        bmax = his[si]
                    si += 1
                nk = kept if kept > fprev else fprev  # next P[kk]
                if two:
                    mn = kept if kept < fprev else fprev
                else:
                    mn = fprev
                ai = a_l[i]
                s_ = ai if ai > mn else mn
                so = s_l[i]
                if kk > bmax and s_ == so and (not two or nk == p_l[i]):
                    stop = True
                    done = kk
                    break
                if s_ != so:
                    changed.append(kk)
                stbuf.append(s_)
                pbuf.append(nk)
                kept = nk
                fprev = s_ + w_l[i]
                i += 1
            if i:
                starts[k : k + i] = stbuf
                if two:
                    P[k : k + i] = pbuf
                walked += i
                if walked > budget:
                    return None
            k += i
            ch = ch * 4
        if not stop:
            done = n
    return changed


def _fifo_patch_many(
    admit: np.ndarray,
    work: np.ndarray,
    starts: np.ndarray,
    P: Optional[np.ndarray],
    cores: int,
    span_lo: np.ndarray,
    span_hi: np.ndarray,
) -> Optional[np.ndarray]:
    """Repair the FIFO fixpoint around *many* spans in lockstep.

    Same contract as :func:`_fifo_patch`, but the scalar walk state
    (``kept``, ``fprev``) is carried per span in arrays, so one numpy
    step advances every span by one position — the per-span Python
    overhead of the scalar walk vanishes when thousands of small spans
    are in flight.  Writes are deferred: a span's buffered values are
    committed only once it rejoins the old fixpoint, and its rejoin
    tests therefore always compare against pristine old values.  A span
    whose cascade reaches the next span's first position (or outlives
    the iteration cap) is handed, left to right, to the scalar walk —
    whose absorption logic is built for exactly that — after all
    committed spans are applied.  Commits can't invalidate each other:
    a span rejoining before the next span's seed position never wrote
    that seed, and tested positions never overlap another span's
    writes.  Returns the changed positions, or ``None`` on a blown
    budget (partially committed values are exact finals, so the
    caller's warm full solve stays sound).
    """
    n = int(admit.size)
    ns = int(span_lo.size)
    two = cores == 2
    nxt = np.empty(ns, dtype=np.int64)
    nxt[:-1] = span_lo[1:]
    nxt[-1] = n
    fprev = np.zeros(ns)
    kept = np.zeros(ns)
    seeded = span_lo > 0
    pl = span_lo[seeded] - 1
    fprev[seeded] = starts[pl] + work[pl]
    if two:
        kept[seeded] = P[pl]
    kk = span_lo.astype(np.int64, copy=True)
    active = np.ones(ns, dtype=bool)
    finished = np.zeros(ns, dtype=bool)
    rec_k: list[np.ndarray] = []
    rec_s: list[np.ndarray] = []
    rec_p: list[np.ndarray] = []
    rec_sid: list[np.ndarray] = []
    rec_ch: list[np.ndarray] = []
    for _ in range(_PATCH_LOCKSTEP_CAP):
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            break
        k_a = kk[idx]
        inb = k_a < nxt[idx]
        ran_off = ~inb & (k_a >= n)
        if ran_off.any():
            # walked off the end of the schedule: success, by the same
            # rule as the scalar walk's end-of-array stop
            finished[idx[ran_off]] = True
        if not inb.all():
            # the rest hit the next span's first position: leave them
            # unfinished for the scalar walk
            active[idx[~inb]] = False
            idx = idx[inb]
            if idx.size == 0:
                break
            k_a = kk[idx]
        kp = kept[idx]
        fp = fprev[idx]
        nk = np.maximum(kp, fp)
        mn = np.minimum(kp, fp) if two else fp
        s_ = np.maximum(admit[k_a], mn)
        so = starts[k_a]
        rej = (k_a > span_hi[idx]) & (s_ == so)
        if two:
            rej &= nk == P[k_a]
        if rej.any():
            finished[idx[rej]] = True
            active[idx[rej]] = False
            go = ~rej
            idx = idx[go]
            k_a = k_a[go]
            s_ = s_[go]
            nk = nk[go]
            so = so[go]
        if idx.size:
            rec_k.append(k_a)
            rec_s.append(s_)
            if two:
                rec_p.append(nk)
            rec_sid.append(idx)
            rec_ch.append(s_ != so)
            kept[idx] = nk
            fprev[idx] = s_ + work[k_a]
            kk[idx] = k_a + 1
    changed_parts: list[np.ndarray] = []
    if rec_k:
        kall = np.concatenate(rec_k)
        sall = np.concatenate(rec_s)
        keep = finished[np.concatenate(rec_sid)]
        kc = kall[keep]
        starts[kc] = sall[keep]
        if two:
            P[kc] = np.concatenate(rec_p)[keep]
        chk = kc[np.concatenate(rec_ch)[keep]]
        if chk.size:
            changed_parts.append(chk)
    unfin = ~finished
    if unfin.any():
        wchg = _fifo_patch(
            admit, work, starts, P, cores, span_lo[unfin], span_hi[unfin]
        )
        if wchg is None:
            return None
        if wchg:
            changed_parts.append(np.asarray(wchg, dtype=np.int64))
    if not changed_parts:
        return np.empty(0, dtype=np.int64)
    return (
        changed_parts[0]
        if len(changed_parts) == 1
        else np.concatenate(changed_parts)
    )


def _core_free_final(
    starts: np.ndarray, work: np.ndarray, cores: int
) -> list[float]:
    """Final per-core free times, in core-index order, from the
    committed schedule — bit-identical to the event loop's argmin walk.

    For two cores the claim sequence is reconstructed in closed form:
    the pair before job ``i`` holds ``{kept_i, F[i-1]}`` with
    ``kept_i = max(0, F[0..i-2])``; job ``i`` lands on the newest job's
    core when ``F[i-1] < kept_i`` (no flip), on the other core when
    greater (flip), and on core 0 on an exact value tie (``np.argmin``
    picks the first minimum of equal values).  The core of the last job
    is then a parity prefix with resets at ties — all NumPy.
    """
    n = int(starts.size)
    if cores >= 3:
        _, free = _fifo_reference(starts, work, cores)
        # note: feeding *starts* as admits reproduces the same claims
        # because start >= admit never reorders a FIFO claim sequence
        return free
    if cores == 1:
        if n == 0:
            return [0.0]
        return [float(starts[-1] + work[-1])]
    if n == 0:
        return [0.0, 0.0]
    F = starts + work
    if n == 1:
        return [float(F[0]), 0.0]
    kept = np.empty(n)
    kept[0] = 0.0
    kept[1] = 0.0
    if n > 2:
        np.maximum.accumulate(F[: n - 2], out=kept[2:])
    fprev = F[: n - 1]
    k = kept[1:]
    flip = (fprev > k).astype(np.int64)
    cs = np.cumsum(flip)
    tie = fprev == k
    if tie.any():
        base = np.where(tie, cs, 0)
        np.maximum.accumulate(base, out=base)
        c_last = int((cs[-1] - base[-1]) & 1)
    else:
        c_last = int(cs[-1] & 1)
    pair = [0.0, 0.0]
    pair[c_last] = float(F[-1])
    other = kept[-1] if kept[-1] > F[n - 2] else F[n - 2]
    pair[1 - c_last] = float(other)
    return pair


# ---------------------------------------------------------------------------
# Shard slices and per-shard state
# ---------------------------------------------------------------------------

_Exports = list[tuple[int, np.ndarray, np.ndarray]]
_StartExports = list[tuple[int, np.ndarray, np.ndarray, np.ndarray]]


@dataclass
class ShardSlice:
    """The static slice of one slot owned by a single region shard.

    Row-side arrays cover the shard's *requests* (those homed in the
    region); node-side arrays cover the invocations landing on the
    shard's *nodes* — including invocations exported by other shards.
    Invocations are keyed by their global flat rank
    ``row_position * width + chain_position``, the deterministic
    tie-break order shared with the reference engine.
    """

    region: int
    n_regions: int
    width: int
    cores: int
    rows: np.ndarray            # global row positions (ascending)
    at_rows: np.ndarray
    lengths: np.ndarray
    first_ready: np.ndarray
    transfer: np.ndarray
    service: np.ndarray
    cloud_mask: np.ndarray
    ret: np.ndarray
    # row-side edge invocations (ascending rank)
    re_row: np.ndarray          # local row index
    re_col: np.ndarray
    re_rank: np.ndarray
    re_s: np.ndarray
    re_dst: np.ndarray          # region owning the target node
    # node-side invocations (ascending rank)
    ne_rank: np.ndarray
    ne_node: np.ndarray
    ne_svc: np.ndarray
    ne_s: np.ndarray
    ne_pooled: np.ndarray
    ne_src: np.ndarray          # region owning the request
    node_ids: np.ndarray        # nodes of this region (ascending)
    groups: np.ndarray          # pooled (svc, node) keys on these nodes
    carried: np.ndarray
    keep_alive: float
    cold_penalty: float
    M: np.int64
    # optional warm-start seed for this shard's rows (same shape as the
    # ready matrix); ``None`` seeds from the congestion-free bound
    warm_init: Optional[np.ndarray] = None

    @classmethod
    def from_plan(
        cls, plan: ReplayPlan, region_map: RegionMap, region: int
    ) -> "ShardSlice":
        """Carve one region's slice out of a full (coordinator) plan."""
        # the region-independent edge annotations are shared by every
        # region's carve — compute them once per (plan, region map)
        pre = getattr(plan, "_shard_pre", None)
        if pre is None or pre[0] is not region_map:
            node_region = region_map.regions
            row_region = node_region[_row_home_nodes(plan)]
            ranks = plan.e_rows * np.int64(plan.width) + plan.e_cols
            e_row_region = row_region[plan.e_rows]
            v_region = node_region[plan.v_edge]
            g_node = np.divmod(plan.groups, plan.M)[1]
            pre = (region_map, row_region, ranks, e_row_region,
                   v_region, g_node)
            plan._shard_pre = pre
        _, row_region, ranks, e_row_region, v_region, g_node = pre
        rows = np.nonzero(row_region == region)[0]
        row_pos = np.full(plan.n_req, -1, dtype=np.int64)
        row_pos[rows] = np.arange(rows.size)

        re_sel = np.nonzero(e_row_region == region)[0]
        ne_sel = np.nonzero(v_region == region)[0]

        node_ids = region_map.nodes_of(region)
        g_mask = np.isin(g_node, node_ids)
        return cls(
            region=region,
            n_regions=region_map.n_regions,
            width=plan.width,
            cores=plan.cores,
            rows=rows,
            at_rows=plan.at[rows],
            lengths=plan.lengths[rows],
            first_ready=plan.first_ready[rows],
            transfer=plan.transfer[rows],
            service=plan.service[rows],
            cloud_mask=plan.cloud_mask[rows],
            ret=plan.ret[rows],
            re_row=row_pos[plan.e_rows[re_sel]],
            re_col=plan.e_cols[re_sel],
            re_rank=ranks[re_sel],
            re_s=plan.s_edge[re_sel],
            re_dst=v_region[re_sel],
            ne_rank=ranks[ne_sel],
            ne_node=plan.v_edge[ne_sel],
            ne_svc=plan.svc_edge[ne_sel],
            ne_s=plan.s_edge[ne_sel],
            ne_pooled=plan.pooled[ne_sel],
            ne_src=e_row_region[ne_sel],
            node_ids=node_ids,
            groups=plan.groups[g_mask],
            carried=plan.carried[g_mask],
            keep_alive=plan.keep_alive,
            cold_penalty=plan.cold_penalty,
            M=plan.M,
        )


def _row_home_nodes(plan: ReplayPlan) -> np.ndarray:
    """Home node of each plan row, annotated by :func:`build_shard_slices`
    (``build_replay_plan`` itself does not retain homes)."""
    homes = getattr(plan, "_homes", None)
    if homes is None:
        raise RuntimeError("plan is missing home annotations")
    return homes


@dataclass
class ShardCommit:
    """Per-shard commit payload returned by :meth:`RegionShard.finalize`."""

    rows: np.ndarray
    finish: np.ndarray
    queueing: np.ndarray
    cold: np.ndarray
    busy: dict
    core_free: dict
    pool_updates: dict
    n_cold: int
    n_warm: int
    tied: bool
    n_local: int
    n_boundary: int
    # per owned node: summed admission delay (start − ready, includes
    # cold-start penalties) and invocation count — feeds the cross-slot
    # :class:`repro.runtime.replay.WarmStartCache`
    node_wait: dict = field(default_factory=dict)
    node_count: dict = field(default_factory=dict)


@dataclass
class _NodeCache:
    """One node's claim-order state, reused across re-simulations.

    All arrays are aligned with the claim order (``ready``-sorted,
    ties by ascending rank).  As long as the order stays a valid stable
    sort after a ready update, re-simulation only patches the changed
    positions instead of re-sorting and re-gathering the whole node.
    """

    order: np.ndarray  # claim order (argsort of ready within the node)
    inv: np.ndarray  # inverse permutation: node-local idx -> claim pos
    sel: np.ndarray  # global ne positions in claim order
    r_s: np.ndarray  # ready times, claim order
    w_s: np.ndarray  # service times, claim order
    pen_s: np.ndarray  # cold-start penalties, claim order
    adm: np.ndarray  # admit times (ready + penalty), claim order
    st_s: np.ndarray  # start times, claim order
    gcl: np.ndarray  # group index per claim position (-1 = not pooled)
    gmo: np.ndarray  # pooled claim positions grouped by pool group, each
    # group's block sorted ascending (= per-group warmth chain order)
    gmoff: np.ndarray  # group g's block is gmo[gmoff[g]:gmoff[g + 1]]
    ties: int  # count of same-value adjacent pairs in ``r_s``
    P: Optional[np.ndarray]  # lagged prefix max of finish (cores == 2)


class _ShardTelemetry:
    """Per-shard telemetry accumulator (allocated only while tracing).

    ``counters`` holds *deterministic* event counts — pure functions of
    the replay inputs, so they are bit-identical between the serial
    driver and any worker executor (the cross-process counter-identity
    test relies on this).  ``phase_elapsed``/``phase_calls`` hold
    wall-clock accumulators per protocol phase, emitted as one
    synthetic ``shard<k>`` span by :meth:`RegionShard.flush_telemetry`.
    """

    __slots__ = ("counters", "phase_elapsed", "phase_calls")

    def __init__(self) -> None:
        self.counters = {
            "node_sims": 0,
            "cache_rebuilds": 0,
            "cache_splices": 0,
        }
        self.phase_elapsed: dict[str, float] = {}
        self.phase_calls: dict[str, int] = {}

    def note_phase(self, phase: str, elapsed: float) -> None:
        """Accumulate one timed call of the named protocol phase."""
        self.phase_elapsed[phase] = self.phase_elapsed.get(phase, 0.0) + elapsed
        self.phase_calls[phase] = self.phase_calls.get(phase, 0) + 1


class RegionShard:
    """One region's live replay state: nodes, pools, rows, exchanges.

    Methods are message-shaped (one picklable argument, one picklable
    return) so the same object runs in-process under the serial driver
    or inside a :class:`~repro.utils.parallel.PipeWorkerPool` worker.

    When the ambient tracer is enabled at construction time the shard
    accumulates telemetry (:class:`_ShardTelemetry`) and emits it via
    :meth:`flush_telemetry` — in a worker that lands in the worker's
    local tracer, installed by
    :meth:`repro.utils.parallel.PipeWorkerPool.set_tracing` *before*
    the shard is loaded, and shipped back with
    :meth:`~repro.utils.parallel.PipeWorkerPool.collect_telemetry`.
    """

    def __init__(self, slc: ShardSlice):
        self.slc = slc
        self.region = slc.region
        n_rows = int(slc.rows.size)
        n_re = int(slc.re_rank.size)
        n_ne = int(slc.ne_rank.size)
        self.ready = np.zeros((n_rows, slc.width))
        self.re_start = np.zeros(n_re)
        self.re_pen = np.zeros(n_re)
        self.ne_r = np.zeros(n_ne)
        self.ne_pen = np.zeros(n_ne)
        self.ne_start = np.zeros(n_ne)
        self._finish = np.zeros((n_rows, slc.width))
        # per owned node: indices into the ne arrays (ascending rank)
        self.node_idx = {
            int(v): np.nonzero(slc.ne_node == v)[0] for v in slc.node_ids
        }
        # ne position -> index within its node's idx block (idx blocks
        # are ascending, so this replaces a per-round searchsorted)
        self._ne_local_i = np.empty(n_ne, dtype=np.int64)
        for idx in self.node_idx.values():
            self._ne_local_i[idx] = np.arange(idx.size)
        # group index of each pooled invocation (-1 when not pooled)
        self._g_of_ne = np.full(n_ne, -1, dtype=np.int64)
        pooled_pos = np.nonzero(slc.ne_pooled)[0]
        if pooled_pos.size:
            keys = slc.ne_svc[pooled_pos] * slc.M + slc.ne_node[pooled_pos]
            self._g_of_ne[pooled_pos] = np.searchsorted(slc.groups, keys)
        self.group_last = np.full(slc.groups.size, np.nan)
        self.group_cold = np.zeros(slc.groups.size, dtype=np.int64)
        self.group_warm = np.zeros(slc.groups.size, dtype=np.int64)
        # last computed warmth per invocation (ne-indexed, so it survives
        # claim-order permutations); lets the incremental path turn a
        # recomputed warm bit into a counter delta
        self._ne_warm = np.zeros(n_ne, dtype=bool)
        self.tied = {v: False for v in self.node_idx}
        self._simmed = {v: False for v in self.node_idx}
        # CSR of row-side invocations by local row (re_row is ascending)
        self.row_ptr = np.searchsorted(
            slc.re_row, np.arange(n_rows + 1)
        )
        # dirty tracking: ne positions whose ready changed since the
        # last sim step, and local rows needing re-propagation
        self._changed_chunks: list[np.ndarray] = []
        self._node_cache: dict[int, _NodeCache] = {}
        self._pending_rows = np.ones(n_rows, dtype=bool)
        self._prop_changed = np.zeros(n_rows, dtype=bool)
        # foreign exchange bookkeeping: send-on-change (NaN = never sent,
        # so the first export ships every foreign ready)
        self._re_foreign = np.nonzero(slc.re_dst != slc.region)[0]
        self._re_sent_vals = np.full(n_re, np.nan)
        self._ne_foreign = np.nonzero(slc.ne_src != slc.region)[0]
        # local fast path: row invocations on own nodes map 1:1 to ne rows
        local = np.nonzero(slc.re_dst == slc.region)[0]
        self._re_local = local
        self._ne_of_local = np.searchsorted(slc.ne_rank, slc.re_rank[local])
        self._ne_of_re = np.full(n_re, -1, dtype=np.int64)
        self._ne_of_re[local] = self._ne_of_local
        self._re_of_ne = np.full(n_ne, -1, dtype=np.int64)
        self._re_of_ne[self._ne_of_local] = local
        # ne positions whose start/penalty changed in the last sim step
        self._start_changed: list[np.ndarray] = []
        # telemetry only exists while the ambient tracer is enabled, so
        # disabled runs pay a single None check per protocol call
        self._telemetry = (
            _ShardTelemetry() if current_tracer().enabled else None
        )

    def _timed(self, phase: str, fn, payload):
        """Run one protocol phase, accumulating wall time when traced."""
        tel = self._telemetry
        if tel is None:
            return fn(payload)
        t0 = time.perf_counter()
        out = fn(payload)
        tel.note_phase(phase, time.perf_counter() - t0)
        return out

    # -- protocol steps -------------------------------------------------
    def begin(self, _payload=None) -> _Exports:
        """Initialize with the congestion-free bound (or the slice's
        warm-start seed when one is present); export readies."""
        return self._timed("begin", self._begin_impl, _payload)

    def _begin_impl(self, _payload=None) -> _Exports:
        slc = self.slc
        if slc.warm_init is not None:
            self.ready = np.array(slc.warm_init, dtype=np.float64)
            return self._export_ready()
        ready = np.zeros((slc.rows.size, slc.width))
        if slc.rows.size:
            ready[:, 0] = slc.first_ready
            for j in range(slc.width - 1):
                free_finish = ready[:, j] + slc.service[:, j]
                ready[:, j + 1] = np.where(
                    slc.lengths > j + 1,
                    ready[:, j] + (
                        (free_finish - ready[:, j]) + slc.transfer[:, j]
                    ),
                    0.0,
                )
        self.ready = ready
        return self._export_ready()

    def _export_ready(
        self, re_positions: Optional[np.ndarray] = None
    ) -> _Exports:
        """Flow ready values out of the rows at the given re positions
        (all of them when ``None``): local ones update ``ne_r`` in
        place, foreign ones are bucketed per destination region.  Only
        genuinely changed values move — the rest are already current on
        the receiving side."""
        slc = self.slc
        p = (
            np.arange(slc.re_rank.size)
            if re_positions is None
            else re_positions
        )
        if p.size == 0:
            return []
        vals = self.ready[slc.re_row[p], slc.re_col[p]]
        nol = self._ne_of_re[p]
        localm = nol >= 0
        lp = nol[localm]
        if lp.size:
            lv = vals[localm]
            ch = lv != self.ne_r[lp]
            if ch.any():
                wpos = lp[ch]
                self.ne_r[wpos] = lv[ch]
                self._changed_chunks.append(wpos)
        out: _Exports = []
        fm = ~localm
        if fm.any():
            fpos = p[fm]
            fv = vals[fm]
            chf = fv != self._re_sent_vals[fpos]
            if chf.any():
                spos = fpos[chf]
                sv = fv[chf]
                self._re_sent_vals[spos] = sv
                dsts = slc.re_dst[spos]
                for d in np.unique(dsts).tolist():
                    pick = dsts == d
                    out.append(
                        (int(d), slc.re_rank[spos[pick]], sv[pick])
                    )
        return out

    def step_sim(
        self, imports: Optional[tuple[np.ndarray, np.ndarray]]
    ) -> _StartExports:
        """Import foreign readies, re-simulate changed nodes, export
        the start/penalty values of foreign-owned invocations."""
        return self._timed("step_sim", self._step_sim_impl, imports)

    def _step_sim_impl(
        self, imports: Optional[tuple[np.ndarray, np.ndarray]]
    ) -> _StartExports:
        slc = self.slc
        chunks = self._changed_chunks
        self._changed_chunks = []
        if imports is not None and imports[0].size:
            pos = np.searchsorted(slc.ne_rank, imports[0])
            self.ne_r[pos] = imports[1]
            chunks.append(pos)
        # nodes to (re)simulate: any with a changed input, plus any with
        # invocations never simulated (the first round covers them all)
        by_node: dict[int, Optional[np.ndarray]] = {}
        if chunks:
            allpos = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            owners = slc.ne_node[allpos]
            grp = np.argsort(owners, kind="stable")
            allpos = allpos[grp]
            owners = owners[grp]
            cuts = np.nonzero(owners[1:] != owners[:-1])[0] + 1
            first_of = np.concatenate(([0], cuts))
            bounds = np.append(cuts, owners.size)
            for b0, b1 in zip(first_of.tolist(), bounds.tolist()):
                by_node[int(owners[b0])] = allpos[b0:b1]
        for v, done in self._simmed.items():
            if not done and self.node_idx[v].size:
                by_node.setdefault(v, None)
        for v in sorted(by_node):
            self._sim_node(v, self.node_idx[v], by_node[v])
        return self._export_start()

    def _sim_node(
        self, v: int, idx: np.ndarray, chpos: Optional[np.ndarray]
    ) -> None:
        slc = self.slc
        first = not self._simmed[v]
        self._simmed[v] = True
        cache = self._node_cache.get(v)
        posc = None
        pchg = None
        span_a = span_b = None
        rebuild = first or cache is None
        if not rebuild:
            # incremental path: late in the fixpoint a changed ready
            # value moves only a short distance in the claim order, so
            # re-sort *locally*: each changed element's old position and
            # value-insertion range bound a span; merged spans contain
            # every displacement (interacting moves overlap by value
            # range), so a stable local sort of each span reproduces the
            # exact global stable order.  Boundary checks guard the
            # argument — any violation falls back to a full rebuild.
            assert chpos is not None
            m = int(cache.r_s.size)
            within = self._ne_local_i[chpos]
            posc_old = cache.inv[within]
            newvals = self.ne_r[chpos]
            r_s = cache.r_s
            L = np.searchsorted(r_s, newvals, side="left")
            R = np.searchsorted(r_s, newvals, side="right")
            lo_i = np.minimum(posc_old, L)
            hi_i = np.minimum(np.maximum(posc_old, R), m - 1)
            o = np.argsort(lo_i, kind="stable")
            lo_s = lo_i[o]
            hi_s = hi_i[o]
            run = np.maximum.accumulate(hi_s)
            head = np.empty(lo_s.size, dtype=bool)
            head[0] = True
            # merge overlapping *and* adjacent spans so the tie-pair
            # ranges below stay disjoint
            np.greater(lo_s[1:], run[:-1] + 1, out=head[1:])
            span_a = lo_s[head]
            span_b = np.maximum.reduceat(hi_s, np.nonzero(head)[0])
            sizes = span_b - span_a + 1
            csum = np.cumsum(sizes)
            total = int(csum[-1])
            if total * 4 > m:
                # spans cover too much of the node — a fresh argsort
                # has better constants than splicing
                rebuild = True
                span_a = span_b = None
            else:
                # flat positions of every span, with a span id per
                # position so one lexsort re-sorts all spans at once
                offs = np.concatenate(([0], csum[:-1]))
                flat = np.arange(total) + np.repeat(span_a - offs, sizes)
                sid = np.repeat(np.arange(span_a.size), sizes)
                # tie pairs can only appear/vanish on pairs whose left
                # index is in [a-1, b] (clipped); spans merge when
                # adjacent, so these ranges are disjoint across spans
                pa = np.maximum(span_a - 1, 0)
                pb = np.minimum(span_b, m - 2)
                pkeep = pb >= pa
                psz = (pb - pa + 1)[pkeep]
                pcs = np.cumsum(psz)
                flatp = np.arange(int(pcs[-1])) + np.repeat(
                    pa[pkeep] - np.concatenate(([0], pcs[:-1])), psz
                ) if psz.size else np.empty(0, dtype=np.int64)
                old_eq = int(
                    np.count_nonzero(r_s[flatp] == r_s[flatp + 1])
                )
                # pooled members inside the spans, before the splice —
                # their gmo slots are found by searching their *old*
                # positions, so capture them now
                gclf = cache.gcl[flat]
                pmo = gclf >= 0
                p_old = flat[pmo]
                g_old = gclf[pmo]
                r_s[posc_old] = newvals
                order = cache.order
                perm = np.lexsort((order[flat], r_s[flat], sid))
                src = flat[perm]
                moved = not np.array_equal(src, flat)
                if moved:
                    r_s[flat] = r_s[src]
                    order[flat] = order[src]
                    cache.sel[flat] = cache.sel[src]
                    cache.w_s[flat] = cache.w_s[src]
                    cache.pen_s[flat] = cache.pen_s[src]
                    cache.adm[flat] = cache.adm[src]
                    cache.st_s[flat] = cache.st_s[src]
                    cache.gcl[flat] = cache.gcl[src]
                    cache.inv[order[flat]] = flat
                # each span must rejoin its neighbors in exact
                # stable-sort order (ascending values, ties by
                # ascending rank); a violation means content had to
                # cross a span boundary — rebuild instead (the
                # partially spliced cache stays element-wise
                # consistent, and the rebuild regathers everything
                # from the authoritative ne arrays)
                ok = True
                la = span_a[span_a > 0]
                if la.size:
                    ok = not bool(
                        np.any(
                            ~(
                                (r_s[la - 1] < r_s[la])
                                | (
                                    (r_s[la - 1] == r_s[la])
                                    & (order[la - 1] < order[la])
                                )
                            )
                        )
                    )
                if ok:
                    rb = span_b[span_b < m - 1]
                    if rb.size:
                        ok = not bool(
                            np.any(
                                ~(
                                    (r_s[rb] < r_s[rb + 1])
                                    | (
                                        (r_s[rb] == r_s[rb + 1])
                                        & (order[rb] < order[rb + 1])
                                    )
                                )
                            )
                        )
                if ok:
                    # same-value pairs appear/vanish only inside the
                    # spans — keep the tie count incremental
                    new_eq = int(
                        np.count_nonzero(r_s[flatp] == r_s[flatp + 1])
                    )
                    cache.ties += new_eq - old_eq
                    posc = cache.inv[within]
                    if p_old.size:
                        pchg = self._patch_warmth(
                            cache, p_old, g_old, flat, moved
                        )
                else:
                    rebuild = True
                    span_a = span_b = None
        if rebuild:
            r_v = self.ne_r[idx]
            order = np.argsort(r_v, kind="stable")
            inv = np.empty_like(order)
            inv[order] = np.arange(order.size)
            sel = idx[order]
            g_claim = self._g_of_ne[sel]
            pcl = np.nonzero(g_claim >= 0)[0]
            gvals = g_claim[pcl]
            kor = np.argsort(gvals, kind="stable")
            r_s = r_v[order]
            m0 = int(r_s.size)
            cache = _NodeCache(
                order=order,
                inv=inv,
                sel=sel,
                r_s=r_s,
                w_s=slc.ne_s[sel],
                # on the first sim the ne arrays are still all-zero —
                # skip two large scattered gathers
                pen_s=np.zeros(m0) if first else self.ne_pen[sel],
                adm=np.empty(0),
                st_s=np.zeros(m0) if first else self.ne_start[sel],
                gcl=g_claim,
                gmo=pcl[kor],
                gmoff=np.searchsorted(
                    gvals[kor], np.arange(slc.groups.size + 1)
                ),
                ties=int(np.count_nonzero(r_s[1:] == r_s[:-1])),
                P=None,
            )
            self._node_cache[v] = cache
        tel = self._telemetry
        if tel is not None:
            # deterministic: rebuild-vs-splice is a pure function of the
            # replay inputs, so these counts are executor-independent
            tel.counters["node_sims"] += 1
            key = "cache_rebuilds" if rebuild else "cache_splices"
            tel.counters[key] += 1
        r_s = cache.r_s
        m = int(r_s.size)
        # Exact same-node ready ties are event-order dependent; checked
        # at convergence (see replay_slot) using each node's last sim.
        self.tied[v] = cache.ties > 0

        # Pool warmth.  On a rebuild every group is recomputed from
        # scratch; the incremental splice path instead patched exactly
        # the affected members in ``_patch_warmth`` above (clean groups'
        # inputs are unchanged, so their penalties, counters and final
        # invocation stand as computed).  The grouped member layout
        # ``gmo`` is already in the exact (group, ready, rank) order of
        # the reference engine's lexsort — no per-sim sort needed.
        if rebuild and cache.gmo.size:
            gmoff = cache.gmoff
            sizes_g = np.diff(gmoff)
            nz = np.nonzero(sizes_g > 0)[0]
            ps = cache.gmo
            times = r_s[ps]
            mk = int(ps.size)
            starts_of = gmoff[:-1][nz]
            # a group's first member compares against its carried
            # last-use time; seeding ``prev`` there folds both cases
            # into one rule
            prev = np.empty(mk)
            prev[1:] = times[:-1]
            prev[starts_of] = slc.carried[nz]
            warm = (times - prev) <= slc.keep_alive
            cold = ~warm
            if first:
                # penalties are all still zero, so the cold members are
                # exactly the changes
                if slc.cold_penalty != 0.0:
                    pchg = ps[cold]
                    cache.pen_s[pchg] = slc.cold_penalty
            else:
                penvals = np.where(warm, 0.0, slc.cold_penalty)
                pen_ch = penvals != cache.pen_s[ps]
                if pen_ch.any():
                    # ne_pen itself is updated by the export compare
                    # below, which needs the old values to detect the
                    # change
                    pchg = ps[pen_ch]
                    cache.pen_s[pchg] = penvals[pen_ch]
            self._ne_warm[cache.sel[ps]] = warm
            self.group_last[nz] = times[gmoff[1:][nz] - 1]
            n_cold_g = np.add.reduceat(cold.astype(np.int64), starts_of)
            self.group_cold[nz] = n_cold_g
            self.group_warm[nz] = sizes_g[nz] - n_cold_g

        if rebuild:
            cache.adm = r_s + cache.pen_s
            init = None if first else cache.st_s
            starts = _fifo_starts(cache.adm, cache.w_s, slc.cores, init, 0)
            cache.st_s = starts
            if slc.cores == 2:
                P = np.empty(m + 1)
                P[0] = 0.0
                if m:
                    np.add(starts, cache.w_s, out=P[1:])
                    np.maximum.accumulate(P[1:], out=P[1:])
                cache.P = P
            cand_parts = [np.arange(m)]
        else:
            # only positions with a changed ready or penalty can have a
            # changed admit
            upd = posc if pchg is None else np.concatenate((posc, pchg))
            cache.adm[upd] = r_s[upd] + cache.pen_s[upd]
            # the FIFO must re-solve wherever the admit *or* the claim
            # sequence changed: the splice spans plus penalty-only
            # positions (as singleton spans), merged
            if pchg is None:
                fa, fb = span_a, span_b
            else:
                a2 = np.concatenate((span_a, pchg))
                b2 = np.concatenate((span_b, pchg))
                o2 = np.argsort(a2, kind="stable")
                a2 = a2[o2]
                b2 = b2[o2]
                run2 = np.maximum.accumulate(b2)
                head2 = np.empty(a2.size, dtype=bool)
                head2[0] = True
                np.greater(a2[1:], run2[:-1] + 1, out=head2[1:])
                fa = a2[head2]
                fb = np.maximum.reduceat(b2, np.nonzero(head2)[0])
            wchg = None
            if slc.cores <= 2 and m >= 32:
                wchg = _fifo_patch_many(
                    cache.adm,
                    cache.w_s,
                    cache.st_s,
                    cache.P,
                    slc.cores,
                    fa,
                    fb,
                )
            if wchg is None:
                # walk overran its budget (deep cascade) or many-core
                # node: full warm solve — the prefix before the first
                # affected span is final
                lo0 = int(fa[0])
                starts = _fifo_starts(
                    cache.adm, cache.w_s, slc.cores, cache.st_s, lo0
                )
                cache.st_s = starts
                if slc.cores == 2:
                    P = np.empty(m + 1)
                    P[0] = 0.0
                    np.add(starts, cache.w_s, out=P[1:])
                    np.maximum.accumulate(P[1:], out=P[1:])
                    cache.P = P
                cand_parts = [np.arange(lo0, m)]
            else:
                # the walk visits (and start-compares) every span
                # position, so per-element changes are exactly the
                # walk's changed positions plus the penalty changes;
                # the splice ``flat`` rides along as defense in depth
                cand_parts = [flat]
                if wchg.size:
                    cand_parts.append(wchg)
                if pchg is not None:
                    cand_parts.append(pchg)
        # unified export compare: scatter starts/penalties that really
        # changed vs. the authoritative per-element ne arrays, and hand
        # exactly those positions to the start exporter
        if first:
            # round 1: essentially every start is fresh — export the
            # node wholesale instead of comparing against the all-zero
            # ne arrays (a spurious entry just re-sends an unchanged
            # value, which the receiving row recompute absorbs)
            self.ne_start[cache.sel] = cache.st_s
            self.ne_pen[cache.sel] = cache.pen_s
            self._start_changed.append(cache.sel)
            return
        cand = (
            cand_parts[0]
            if len(cand_parts) == 1
            else np.unique(np.concatenate(cand_parts))
        )
        if cand.size:
            nepos = cache.sel[cand]
            chm = (cache.st_s[cand] != self.ne_start[nepos]) | (
                cache.pen_s[cand] != self.ne_pen[nepos]
            )
            if chm.any():
                cp = cand[chm]
                npos = nepos[chm]
                self.ne_start[npos] = cache.st_s[cp]
                self.ne_pen[npos] = cache.pen_s[cp]
                self._start_changed.append(npos)

    def _patch_warmth(
        self,
        cache: _NodeCache,
        p_old: np.ndarray,
        g_old: np.ndarray,
        flat: np.ndarray,
        moved: bool,
    ) -> Optional[np.ndarray]:
        """Re-derive pool warmth for exactly the members a splice can
        affect, updating the grouped layout, counters and penalties.

        Warmth is pairwise — ``warm[k]`` depends only on member ``k``'s
        ready time and its in-group predecessor's — so only members
        inside the spans (times and in-group ranks may change) and their
        in-group successors (predecessor time or identity may change)
        need recomputing; every other member's inputs are untouched.
        Returns the claim positions whose penalty changed (or ``None``).
        """
        slc = self.slc
        r_s = cache.r_s
        gmo = cache.gmo
        gmoff = cache.gmoff
        if moved:
            gclf = cache.gcl[flat]
            pmn = gclf >= 0
            p_new = flat[pmn]
            g_new = gclf[pmn]
        else:
            p_new, g_new = p_old, g_old
        tg = np.unique(g_old)
        aff_sl = []
        aff_g = []
        for g in tg.tolist():
            base = int(gmoff[g])
            end = int(gmoff[g + 1])
            og = p_old[g_old == g]
            sl = base + np.searchsorted(gmo[base:end], og)
            if moved:
                # per-(span, group) membership is preserved and both
                # sides are ascending, so the block swap keeps the
                # group's slots sorted
                gmo[sl] = p_new[g_new == g]
            aff = np.unique(np.concatenate((sl, sl + 1)))
            aff = aff[aff < end]
            aff_sl.append(aff)
            aff_g.append(np.full(aff.size, g, dtype=np.int64))
        A = np.concatenate(aff_sl)
        ga = np.concatenate(aff_g)
        jpos = gmo[A]
        isf = A == gmoff[ga]
        prevpos = gmo[np.maximum(A - 1, 0)]
        times = r_s[jpos]
        warm = np.where(
            isf,
            (times - slc.carried[ga]) <= slc.keep_alive,
            (times - r_s[prevpos]) <= slc.keep_alive,
        )
        nej = cache.sel[jpos]
        oldw = self._ne_warm[nej]
        dw = warm != oldw
        if dw.any():
            self._ne_warm[nej[dw]] = warm[dw]
            d = np.where(warm[dw], -1, 1)
            np.add.at(self.group_cold, ga[dw], d)
            np.add.at(self.group_warm, ga[dw], -d)
        # a group's final invocation is its last slot; times only change
        # inside the spans, so refreshing the touched groups suffices
        self.group_last[tg] = r_s[gmo[gmoff[tg + 1] - 1]]
        penv = np.where(warm, 0.0, slc.cold_penalty)
        pen_ch = penv != cache.pen_s[jpos]
        if not pen_ch.any():
            return None
        pchg = jpos[pen_ch]
        cache.pen_s[pchg] = penv[pen_ch]
        return pchg

    def _export_start(self) -> _StartExports:
        """Flow the start/penalty values that changed in this sim step
        back to their rows: local rows update in place (and re-enter
        propagation), foreign ones are bucketed per home region."""
        slc = self.slc
        chunks = self._start_changed
        self._start_changed = []
        if not chunks:
            return []
        pos = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        rp = self._re_of_ne[pos]
        localm = rp >= 0
        lrp = rp[localm]
        if lrp.size:
            lpos = pos[localm]
            self.re_start[lrp] = self.ne_start[lpos]
            self.re_pen[lrp] = self.ne_pen[lpos]
            self._pending_rows[slc.re_row[lrp]] = True
        out: _StartExports = []
        fm = ~localm
        if fm.any():
            fpos = pos[fm]
            srcs = slc.ne_src[fpos]
            for d in np.unique(srcs).tolist():
                pick = fpos[srcs == d]
                out.append(
                    (
                        int(d),
                        slc.ne_rank[pick],
                        self.ne_start[pick],
                        self.ne_pen[pick],
                    )
                )
        return out

    def step_prop(
        self,
        imports: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> tuple[bool, _Exports]:
        """Import foreign starts, re-propagate dirty rows; report change.

        A row's ready chain is a pure function of its own invocation
        starts/penalties and its previous ready row, so only rows with
        a changed input — or rows still settling from the previous
        round — are recomputed.  Untouched rows keep their finish and
        ready values, which equal what a full recompute would produce.
        """
        return self._timed("step_prop", self._step_prop_impl, imports)

    def _step_prop_impl(
        self,
        imports: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> tuple[bool, _Exports]:
        slc = self.slc
        if imports is not None and imports[0].size:
            pos = np.searchsorted(slc.re_rank, imports[0])
            self.re_start[pos] = imports[1]
            self.re_pen[pos] = imports[2]
            self._pending_rows[slc.re_row[pos]] = True
        mask = self._pending_rows | self._prop_changed
        rows = np.nonzero(mask)[0]
        self._pending_rows[:] = False
        self._prop_changed[:] = False
        if rows.size == 0:
            return False, []
        width = slc.width
        k = int(rows.size)
        allrows = k == int(mask.size)
        fin = np.zeros((k, width))
        if allrows:
            # round 1 re-propagates everything: index the row-aligned
            # arrays directly instead of gathering full-size copies
            if slc.re_rank.size:
                fin[slc.re_row, slc.re_col] = self.re_start + slc.re_s
            old = self.ready
            fin = np.where(slc.cloud_mask, old + slc.service, fin)
            new = np.zeros((k, width))
            new[:, 0] = slc.first_ready
            lens = slc.lengths
            tr = slc.transfer
        else:
            sizes = self.row_ptr[rows + 1] - self.row_ptr[rows]
            total = int(sizes.sum())
            if total:
                starts_of = self.row_ptr[rows]
                csum = np.cumsum(sizes)
                flat = np.arange(total) + np.repeat(
                    starts_of - np.concatenate(([0], csum[:-1])), sizes
                )
                lrow = np.repeat(np.arange(k), sizes)
                fin[lrow, slc.re_col[flat]] = (
                    self.re_start[flat] + slc.re_s[flat]
                )
            old = self.ready[rows]
            fin = np.where(
                slc.cloud_mask[rows], old + slc.service[rows], fin
            )
            new = np.zeros((k, width))
            new[:, 0] = slc.first_ready[rows]
            lens = slc.lengths[rows]
            tr = slc.transfer[rows]
        self._finish[rows] = fin
        for j in range(width - 1):
            nxt = new[:, j] + ((fin[:, j] - new[:, j]) + tr[:, j])
            new[:, j + 1] = np.where(lens > j + 1, nxt, 0.0)
        rowch = np.any(new != old, axis=1)
        if not rowch.any():
            # converged for these rows: keep the pre-propagate ready so
            # finalize commits the exact arrays the reference engine
            # would (it breaks before overwriting ``ready``)
            return False, []
        chrows = rows[rowch]
        self.ready[chrows] = new[rowch]
        self._prop_changed[chrows] = True
        cs = self.row_ptr[chrows]
        szs = self.row_ptr[chrows + 1] - cs
        tot = int(szs.sum())
        if tot:
            cflat = np.arange(tot) + np.repeat(
                cs - np.concatenate(([0], np.cumsum(szs)[:-1])), szs
            )
        else:
            cflat = np.empty(0, dtype=np.int64)
        return True, self._export_ready(cflat)

    def finalize(self, _payload=None) -> ShardCommit:
        """Assemble this shard's committed outputs (no mutation here)."""
        return self._timed("finalize", self._finalize_impl, _payload)

    def _finalize_impl(self, _payload=None) -> ShardCommit:
        slc = self.slc
        n_rows = int(slc.rows.size)
        r_rows = (
            self.ready[slc.re_row, slc.re_col]
            if slc.re_rank.size
            else np.empty(0)
        )
        wait_full = np.zeros((n_rows, slc.width))
        pen_full = np.zeros((n_rows, slc.width))
        if slc.re_rank.size:
            wait_full[slc.re_row, slc.re_col] = self.re_start - (
                r_rows + self.re_pen
            )
            pen_full[slc.re_row, slc.re_col] = self.re_pen
        queueing = np.zeros(n_rows)
        cold = np.zeros(n_rows)
        for j in range(slc.width):
            queueing = queueing + wait_full[:, j]
            cold = cold + pen_full[:, j]
        if n_rows:
            row_idx = np.arange(n_rows)
            last_col = slc.lengths - 1
            last_ready = self.ready[row_idx, last_col]
            last_finish = self._finish[row_idx, last_col]
            finish = last_ready + ((last_finish - last_ready) + slc.ret)
        else:
            finish = np.empty(0)

        busy: dict = {}
        core_free: dict = {}
        node_wait: dict = {}
        node_count: dict = {}
        for v, idx in self.node_idx.items():
            cache = self._node_cache.get(v)
            if cache is None:  # node never had an invocation
                busy[v] = 0.0
                core_free[v] = [0.0] * slc.cores
                continue
            # the cache already holds the converged claim-order state;
            # ``add.accumulate`` is a strict left-to-right chain — the
            # event loop's exact IEEE sum order, unlike ``np.sum``'s
            # pairwise reduction
            busy[v] = (
                float(np.add.accumulate(cache.w_s)[-1])
                if cache.w_s.size
                else 0.0
            )
            core_free[v] = _core_free_final(
                cache.st_s, cache.w_s, slc.cores
            )
            if cache.r_s.size:
                node_wait[v] = float(np.sum(cache.st_s - cache.r_s))
                node_count[v] = int(cache.r_s.size)
        pool_updates = {}
        for g, key in enumerate(slc.groups.tolist()):
            svc_g, node_g = divmod(key, int(slc.M))
            pool_updates[(svc_g, node_g)] = self.group_last[g]
        return ShardCommit(
            rows=slc.rows,
            finish=finish,
            queueing=queueing,
            cold=cold,
            busy=busy,
            core_free=core_free,
            pool_updates=pool_updates,
            n_cold=int(self.group_cold.sum()),
            n_warm=int(self.group_warm.sum()),
            tied=any(self.tied.values()),
            n_local=int(self._re_local.size),
            n_boundary=int(self._re_foreign.size),
            node_wait=node_wait,
            node_count=node_count,
        )

    def flush_telemetry(self, _payload=None) -> None:
        """Emit accumulated telemetry into the ambient tracer and reset.

        Counters land under ``runtime.shard.*`` (deterministic, so the
        serial and worker executors emit bit-identical totals) and the
        per-phase wall times become one synthetic ``shard<k>`` span with
        one child per protocol phase.  Inside a worker whose local
        tracer is already named ``shard<k>`` the phase spans attach as
        roots instead — the parent-side payload merge wraps them in the
        same ``shard<k>`` root, so the merged tree has the exact shape
        of a serial traced run.  A no-op when tracing is disabled.
        """
        tel = self._telemetry
        tracer = current_tracer()
        if tel is None or not tracer.enabled:
            return None
        for key in sorted(tel.counters):
            value = tel.counters[key]
            if value:
                tracer.inc(f"runtime.shard.{key}", value)
        name = f"shard{self.region}"
        children = [
            Span(
                name=phase,
                duration=elapsed,
                attrs={"calls": tel.phase_calls[phase]},
            )
            for phase, elapsed in tel.phase_elapsed.items()
        ]
        if children:
            if getattr(tracer, "name", None) == name:
                for child in children:
                    tracer.attach_span(child)
            else:
                tracer.attach_span(
                    Span(
                        name=name,
                        duration=sum(c.duration for c in children),
                        children=children,
                    )
                )
        self._telemetry = _ShardTelemetry()
        return None


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


@dataclass
class ShardStats:
    """Telemetry of one sharded replay (see docs/OBSERVABILITY.md)."""

    n_shards: int = 0
    rounds: int = 0
    exchange_rounds: int = 0
    boundary_invocations: int = 0
    local_invocations: int = 0
    ready_values_exchanged: int = 0
    start_values_exchanged: int = 0
    executor: str = "serial"
    # shared-memory executor telemetry (zero unless executor == "shm")
    shm_bytes: int = 0
    shm_segments: int = 0
    pool_reused: bool = False
    # cross-slot warm start telemetry
    warm_started: bool = False
    warm_seeded_nodes: int = 0
    warm_invalidated_nodes: int = 0
    warm_declined: bool = False


@dataclass
class ShardedReplayResult:
    """A committed sharded replay: the bit-identical columnar result
    plus shard/exchange telemetry."""

    result: ReplayResult
    stats: ShardStats


def _route(
    exports: dict, n_cols: int
) -> dict[int, Optional[tuple]]:
    """Merge per-shard export lists into per-destination payloads."""
    buckets: dict[int, list] = {}
    for items in exports.values():
        for item in items:
            buckets.setdefault(item[0], []).append(item[1:])
    merged: dict[int, Optional[tuple]] = {}
    for d, parts in buckets.items():
        cols = [np.concatenate([p[c] for p in parts]) for c in range(n_cols)]
        order = np.argsort(cols[0], kind="stable")
        merged[d] = tuple(col[order] for col in cols)
    return merged


def run_sharded_rounds(
    shards: Sequence[RegionShard],
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> tuple[Optional[list[ShardCommit]], ShardStats]:
    """Serial driver: the reference Jacobi schedule over shard objects."""
    stats = ShardStats(n_shards=len(shards), executor="serial")
    exports = {s.region: s.begin() for s in shards}
    converged = False
    while stats.rounds < max_rounds:
        stats.rounds += 1
        ready_in = _route(exports, 2)
        stats.ready_values_exchanged += sum(
            int(p[0].size) for p in ready_in.values() if p is not None
        )
        start_exports = {
            s.region: s.step_sim(ready_in.get(s.region)) for s in shards
        }
        start_in = _route(start_exports, 3)
        stats.start_values_exchanged += sum(
            int(p[0].size) for p in start_in.values() if p is not None
        )
        stats.exchange_rounds += 2
        changed = False
        exports = {}
        for s in shards:
            ch, exp = s.step_prop(start_in.get(s.region))
            changed = changed or ch
            exports[s.region] = exp
        if not changed:
            converged = True
            break
    if not converged:
        for s in shards:
            s.flush_telemetry()
        return None, stats
    commits = [s.finalize() for s in shards]
    for s in shards:
        s.flush_telemetry()
    if any(c.tied for c in commits):
        return None, stats
    stats.boundary_invocations = sum(c.n_boundary for c in commits)
    stats.local_invocations = sum(c.n_local for c in commits)
    return commits, stats


def _collect_worker_telemetry(pool, n_workers: int) -> None:
    """Flush every worker shard's telemetry and merge it parent-side.

    Skipped entirely when the ambient tracer is disabled, so untraced
    runs pay zero extra control messages per slot.  Each worker payload
    is grafted with :meth:`repro.obs.Tracer.merge_payload` — under the
    caller's open span, so per-shard subtrees land at the same tree
    position a serial traced run puts them.
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return
    pool.call_all("flush_telemetry", [None] * n_workers)
    for payload in pool.collect_telemetry():
        tracer.merge_payload(payload)


def run_sharded_rounds_pooled(
    pool: "object",
    regions: Sequence[int],
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    executor: str = "process",
    finalize_cmd: str = "finalize",
) -> tuple[Optional[list[ShardCommit]], ShardStats]:
    """Process driver: same schedule, shards live in pipe workers.

    ``pool`` is a :class:`repro.utils.parallel.PipeWorkerPool` whose
    worker ``i`` hosts the :class:`RegionShard` for ``regions[i]`` (or,
    under the shm executor, a :class:`_ShmShardHost` wrapping it —
    ``finalize_cmd`` selects the in-place commit variant there).
    """
    stats = ShardStats(n_shards=len(regions), executor=executor)
    exports = dict(zip(regions, pool.call_all("begin", [None] * len(regions))))
    converged = False
    while stats.rounds < max_rounds:
        stats.rounds += 1
        ready_in = _route(exports, 2)
        stats.ready_values_exchanged += sum(
            int(p[0].size) for p in ready_in.values() if p is not None
        )
        start_exports = dict(
            zip(
                regions,
                pool.call_all(
                    "step_sim", [ready_in.get(r) for r in regions]
                ),
            )
        )
        start_in = _route(start_exports, 3)
        stats.start_values_exchanged += sum(
            int(p[0].size) for p in start_in.values() if p is not None
        )
        stats.exchange_rounds += 2
        replies = pool.call_all(
            "step_prop", [start_in.get(r) for r in regions]
        )
        changed = any(ch for ch, _ in replies)
        exports = {r: exp for r, (_, exp) in zip(regions, replies)}
        if not changed:
            converged = True
            break
    if not converged:
        _collect_worker_telemetry(pool, len(regions))
        return None, stats
    commits = pool.call_all(finalize_cmd, [None] * len(regions))
    _collect_worker_telemetry(pool, len(regions))
    if any(c.tied for c in commits):
        return None, stats
    stats.boundary_invocations = sum(c.n_boundary for c in commits)
    stats.local_invocations = sum(c.n_local for c in commits)
    return commits, stats


def commit_sharded(
    commits: Sequence[ShardCommit],
    stats: ShardStats,
    pool: InstancePool,
    nodes: Sequence,
    req: np.ndarray,
    at: np.ndarray,
    cores: int,
) -> ShardedReplayResult:
    """Merge shard commits into the global result and advance state."""
    n_req = int(req.size)
    finish = np.empty(n_req)
    queueing = np.empty(n_req)
    cold = np.empty(n_req)
    pool_updates: dict = {}
    total_cold = total_warm = 0
    for c in commits:
        finish[c.rows] = c.finish
        queueing[c.rows] = c.queueing
        cold[c.rows] = c.cold
        pool_updates.update(c.pool_updates)
        total_cold += c.n_cold
        total_warm += c.n_warm
        for v, b in c.busy.items():
            nodes[v].busy_time += b
            free = c.core_free[v]
            for ci in range(cores):
                nodes[v].core_free[ci] = free[ci]
    if pool_updates:
        pool.commit_batch(pool_updates, total_cold, total_warm)
    result = ReplayResult(
        request=req.copy(),
        start=at.copy(),
        finish=finish,
        queueing=queueing,
        cold_start=cold,
        rounds=stats.rounds,
    )
    return ShardedReplayResult(result=result, stats=stats)


def slices_from_plan(
    plan: ReplayPlan,
    region_map: RegionMap,
    warm_ready: Optional[np.ndarray] = None,
) -> list[ShardSlice]:
    """Carve every region's :class:`ShardSlice` out of a full plan,
    optionally slicing a coordinator-computed warm-start ready matrix
    into per-shard ``warm_init`` seeds."""
    slices = [
        ShardSlice.from_plan(plan, region_map, r)
        for r in range(region_map.n_regions)
    ]
    if warm_ready is not None:
        slices = [
            replace(s, warm_init=warm_ready[s.rows]) for s in slices
        ]
    return slices


def build_shard_slices(
    instance: ProblemInstance,
    placement: Placement,
    routing: Routing,
    pool: InstancePool,
    nodes: Sequence,
    req: np.ndarray,
    at: np.ndarray,
    region_map: RegionMap,
) -> Optional[list[ShardSlice]]:
    """Build every region's :class:`ShardSlice` from a full plan."""
    plan = build_replay_plan(
        instance, placement, routing, pool, nodes, req, at
    )
    if plan is None:
        return None
    plan._homes = instance.homes[plan.req]  # consumed by ShardSlice.from_plan
    return slices_from_plan(plan, region_map)


# ---------------------------------------------------------------------------
# Shared-memory executor
# ---------------------------------------------------------------------------


#: ShardSlice fields backed by arena arrays under the shm executor.
_SLICE_ARRAYS = (
    "rows", "at_rows", "lengths", "first_ready", "transfer", "service",
    "cloud_mask", "ret", "re_row", "re_col", "re_rank", "re_s", "re_dst",
    "ne_rank", "ne_node", "ne_svc", "ne_s", "ne_pooled", "ne_src",
    "node_ids", "groups", "carried",
)

#: ShardSlice scalar fields shipped in the per-slot control message.
_SLICE_SCALARS = (
    "region", "n_regions", "width", "cores", "keep_alive",
    "cold_penalty", "M",
)

#: Below this many requests per shard the fixpoint is too small for
#: process parallelism to pay for its exchanges (``executor="auto"``).
DEFAULT_SHM_USERS_PER_SHARD = 25_000

#: Environment override for the auto-selection threshold.
SHM_THRESHOLD_ENV = "REPRO_SHM_USERS_PER_SHARD"


def shm_users_per_shard() -> int:
    """The ``executor="auto"`` users-per-shard threshold (env override)."""
    raw = os.environ.get(SHM_THRESHOLD_ENV)
    if raw is None:
        return DEFAULT_SHM_USERS_PER_SHARD
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{SHM_THRESHOLD_ENV} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(
            f"{SHM_THRESHOLD_ENV} must be >= 0, got {value}"
        )
    return value


def resolve_shard_executor(
    executor: str, n_regions: int, n_req: int
) -> str:
    """Resolve ``executor="auto"`` to a concrete engine.

    ``auto`` picks ``"shm"`` only when it can plausibly pay: at least
    two regions, at least :func:`shm_users_per_shard` requests per
    region, more than one CPU, and a working ``multiprocessing.shared_
    memory`` (``/dev/shm``).  Everything else resolves to ``"serial"``.
    Explicit executor names pass through unchanged (validated by
    :func:`replay_slot_sharded`).
    """
    if executor != "auto":
        return executor
    if n_regions < 2 or n_req < shm_users_per_shard() * n_regions:
        return "serial"
    if (os.cpu_count() or 1) < 2:
        return "serial"
    from repro.utils.parallel import shared_memory_available

    if not shared_memory_available():
        return "serial"
    return "shm"


def _align64(nbytes: int) -> int:
    return (int(nbytes) + 63) & ~63


def shm_slot_nbytes(slices: Sequence[ShardSlice]) -> int:
    """Arena bytes needed for one slot's input and output regions."""
    total = 64  # allocator base alignment slack
    for slc in slices:
        for name in _SLICE_ARRAYS:
            total += _align64(getattr(slc, name).nbytes) + 64
        if slc.warm_init is not None:
            total += _align64(slc.warm_init.nbytes) + 64
        # three float64 output columns (finish / queueing / cold)
        total += 3 * (_align64(int(slc.rows.size) * 8) + 64)
    return total


# per-worker cached arena attachment: (segment name, ShmArena)
_WORKER_ARENA: dict = {"name": None, "arena": None}


def _worker_attach(name: str, nbytes: int):
    """Attach this worker to the coordinator's arena segment, reusing
    the cached attachment when the segment is unchanged."""
    from repro.utils.parallel import ShmArena

    if _WORKER_ARENA["name"] != name:
        if _WORKER_ARENA["arena"] is not None:
            _WORKER_ARENA["arena"].close()
        _WORKER_ARENA["arena"] = ShmArena.attach(name, nbytes)
        _WORKER_ARENA["name"] = name
    return _WORKER_ARENA["arena"]


class _ShmShardHost:
    """Worker-side host: a :class:`RegionShard` whose slice arrays are
    zero-copy views into the coordinator's arena, plus pre-allocated
    output views the commit is written into (only scalars and the small
    per-node dicts travel back through the pipe)."""

    def __init__(self, shard: RegionShard, out_views: tuple):
        self.shard = shard
        self._out = out_views

    # protocol steps delegate to the wrapped shard
    def begin(self, payload=None):
        return self.shard.begin(payload)

    def step_sim(self, payload):
        return self.shard.step_sim(payload)

    def step_prop(self, payload):
        return self.shard.step_prop(payload)

    def flush_telemetry(self, payload=None):
        return self.shard.flush_telemetry(payload)

    def finalize_shm(self, _payload=None) -> ShardCommit:
        """Like :meth:`RegionShard.finalize`, but the three per-row
        output columns are written into the arena in place and replaced
        with empty arrays in the pickled reply (``rows`` too — the
        coordinator already holds every slice's row index)."""
        commit = self.shard.finalize()
        out_f, out_q, out_c = self._out
        out_f[:] = commit.finish
        out_q[:] = commit.queueing
        out_c[:] = commit.cold
        empty = np.empty(0)
        return replace(
            commit, rows=np.empty(0, dtype=np.int64),
            finish=empty, queueing=empty, cold=empty,
        )


def _shard_worker_factory(meta: dict) -> _ShmShardHost:
    """Build one worker's :class:`_ShmShardHost` from a control message
    of scalars and arena refs (no array ever crosses the pipe)."""
    arena = _worker_attach(meta["segment"], meta["nbytes"])
    kwargs = {
        name: arena.view(ref) for name, ref in meta["refs"].items()
    }
    kwargs.update(meta["scalars"])
    if meta["warm"] is not None:
        kwargs["warm_init"] = arena.view(meta["warm"])
    slc = ShardSlice(**kwargs)
    out_views = tuple(arena.view(ref) for ref in meta["out"])
    return _ShmShardHost(RegionShard(slc), out_views)


class ShmReplayContext:
    """Persistent shared-memory executor state for a slot sequence.

    Owns the :class:`~repro.utils.parallel.ShmArena` (reset and reused
    across slots, re-created only when a slot outgrows it) and the
    long-lived :class:`~repro.utils.parallel.ShardWorkerPool` whose
    workers attach to the arena once and are re-targeted per slot with
    tiny control messages.  Pass one instance to successive
    :func:`replay_slot_sharded` calls (or let
    :class:`repro.runtime.simulator.OnlineSimulator` own one); without
    it the shm executor builds and tears down a transient context every
    slot and loses the reuse that makes it fast.
    """

    def __init__(self):
        self.arena = None
        self.pool = None
        #: Cumulative telemetry across slots.
        self.segments_created = 0
        self.slots_served = 0
        self.pool_spawns = 0
        #: Whether the live pool's workers currently run local tracers;
        #: tracing control messages are sent on state changes only, so
        #: untraced slot sequences stay message-free.
        self.pool_traced = False

    def ensure_arena(self, nbytes: int):
        """An arena with capacity ``nbytes``: the existing one reset
        when large enough, otherwise a fresh (1.25×-headroom) segment."""
        from repro.utils.parallel import ShmArena

        if self.arena is not None and self.arena.nbytes >= nbytes:
            self.arena.reset()
            return self.arena
        if self.arena is not None:
            self.arena.close()
            self.arena = None
        self.arena = ShmArena(int(nbytes * 1.25))
        self.segments_created += 1
        return self.arena

    def ensure_pool(self, n_workers: int):
        """A live :class:`ShardWorkerPool` of exactly ``n_workers``."""
        from repro.utils.parallel import ShardWorkerPool

        if (
            self.pool is not None
            and not self.pool.closed
            and self.pool.n_workers == n_workers
        ):
            return self.pool, True
        if self.pool is not None:
            self.pool.close()
        self.pool = ShardWorkerPool(n_workers)
        self.pool_spawns += 1
        return self.pool, False

    def close(self) -> None:
        """Shut down the worker pool and release the arena (idempotent)."""
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        if self.arena is not None:
            self.arena.close()
            self.arena = None

    def __enter__(self) -> "ShmReplayContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _shm_metas(arena, slices: Sequence[ShardSlice]) -> tuple[list, list]:
    """Copy every slice's arrays into the arena; return the per-worker
    control messages and the coordinator-side output views."""
    metas = []
    outs = []
    for slc in slices:
        refs = {
            name: arena.put(getattr(slc, name)) for name in _SLICE_ARRAYS
        }
        warm_ref = (
            arena.put(slc.warm_init) if slc.warm_init is not None else None
        )
        out_refs = []
        out_views = []
        for _ in range(3):
            ref, view = arena.alloc(int(slc.rows.size), np.float64)
            out_refs.append(ref)
            out_views.append(view)
        metas.append(
            {
                "segment": arena.name,
                "nbytes": arena.nbytes,
                "refs": refs,
                "scalars": {
                    name: getattr(slc, name) for name in _SLICE_SCALARS
                },
                "warm": warm_ref,
                "out": tuple(out_refs),
            }
        )
        outs.append(tuple(out_views))
    return metas, outs


def run_sharded_rounds_shm(
    context: ShmReplayContext,
    slices: Sequence[ShardSlice],
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> tuple[Optional[list[ShardCommit]], ShardStats]:
    """Shared-memory driver: persistent workers, arena-backed columns.

    The coordinator writes every slice's arrays into the context's
    arena, re-targets the persistent workers with per-slot control
    messages (segment name + refs + scalars), runs the exact pooled
    round schedule, and reads the three per-row output columns straight
    out of the arena when the workers finalize in place.
    """
    arena = context.ensure_arena(shm_slot_nbytes(slices))
    pool, reused = context.ensure_pool(len(slices))
    if not reused:
        context.pool_traced = False
    # trace context crosses the process boundary *before* the shards are
    # (re)built, so their construction-time telemetry gates see it
    want_trace = current_tracer().enabled
    if context.pool_traced != want_trace:
        pool.set_tracing(
            [f"shard{s.region}" for s in slices] if want_trace else None
        )
        context.pool_traced = want_trace
    metas, outs = _shm_metas(arena, slices)
    pool.load_all(_shard_worker_factory, metas)
    context.slots_served += 1
    commits, stats = run_sharded_rounds_pooled(
        pool,
        [s.region for s in slices],
        max_rounds=max_rounds,
        executor="shm",
        finalize_cmd="finalize_shm",
    )
    stats.shm_bytes = arena.used
    stats.shm_segments = context.segments_created
    stats.pool_reused = reused
    if commits is None:
        return None, stats
    # reconstitute the arena-resident columns (copies: the arena is
    # reset on the next slot, the commit must outlive it)
    for commit, slc, (out_f, out_q, out_c) in zip(commits, slices, outs):
        commit.rows = slc.rows
        commit.finish = out_f.copy()
        commit.queueing = out_q.copy()
        commit.cold = out_c.copy()
    return commits, stats


def _run_shard_attempt(
    slices: list[ShardSlice],
    executor: str,
    max_rounds: int,
    shard_context: Optional[ShmReplayContext],
    worker_pool,
) -> tuple[Optional[list[ShardCommit]], ShardStats]:
    """One fixpoint attempt (warm or cold) on the chosen engine."""
    if executor == "shm":
        assert shard_context is not None
        return run_sharded_rounds_shm(
            shard_context, slices, max_rounds=max_rounds
        )
    if executor == "process":
        worker_pool.load_all(RegionShard, slices)
        return run_sharded_rounds_pooled(
            worker_pool,
            [s.region for s in slices],
            max_rounds=max_rounds,
        )
    shards = [RegionShard(s) for s in slices]
    return run_sharded_rounds(shards, max_rounds=max_rounds)


def replay_slot_sharded(
    instance: ProblemInstance,
    placement: Placement,
    routing: Routing,
    pool: InstancePool,
    nodes: Sequence,
    req: np.ndarray,
    at: np.ndarray,
    region_map: RegionMap,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    executor: str = "serial",
    shard_context: Optional[ShmReplayContext] = None,
    warm_start: Optional[WarmStartCache] = None,
) -> Optional[ShardedReplayResult]:
    """Region-sharded replay of one slot; ``None`` declines.

    Bit-identical to :func:`repro.runtime.replay.replay_slot` on the
    same inputs — including the per-round iterates, the round count and
    every decline decision — with per-region state isolated into
    :class:`RegionShard` objects.  ``executor`` selects:

    * ``"serial"`` — in-process shard objects (correct everywhere);
    * ``"process"`` — one persistent pipe worker per region, slices
      pickled to the workers once per slot;
    * ``"shm"`` — persistent workers over a shared-memory arena
      (:class:`ShmReplayContext`): columnar state is published in the
      arena, only refs and exchange deltas cross the pipes, and per-row
      outputs are written back in place.  Pass a ``shard_context`` to
      keep the arena and workers alive across slots; a transient
      context is built (and torn down) per call otherwise.
    * ``"auto"`` — :func:`resolve_shard_executor` picks serial or shm
      from the slot's size and the host's capabilities.

    ``warm_start`` enables the cross-slot warm start exactly as in
    :func:`repro.runtime.replay.replay_slot`: the coordinator seeds
    every shard's initial ready matrix from the cache's per-node
    congestion estimates, and a seeded attempt that fails to converge
    (or lands on a tie) is retried from the cold seed, so declines and
    committed bits never depend on the cache.
    """
    if region_map.n_nodes != len(nodes):
        raise ValueError(
            f"region map covers {region_map.n_nodes} nodes, cluster has "
            f"{len(nodes)}"
        )
    if executor not in ("serial", "process", "shm", "auto"):
        raise ValueError(f"unknown shard executor: {executor!r}")
    req = np.asarray(req, dtype=np.int64)
    at = np.asarray(at, dtype=np.float64)
    executor = resolve_shard_executor(
        executor, region_map.n_regions, int(req.size)
    )
    if req.size == 0:
        return ShardedReplayResult(
            result=empty_result(req),
            stats=ShardStats(
                n_shards=region_map.n_regions, executor=executor
            ),
        )
    plan = build_replay_plan(
        instance, placement, routing, pool, nodes, req, at
    )
    if plan is None:
        return None
    plan._homes = instance.homes[plan.req]  # consumed by ShardSlice.from_plan

    warm_ready = (
        warm_start.initial_ready(plan) if warm_start is not None else None
    )
    warm_meta = (
        (warm_start.last_seeded_nodes, warm_start.last_invalidated_nodes)
        if warm_start is not None
        else (0, 0)
    )
    seeds = [warm_ready, None] if warm_ready is not None else [None]

    transient_ctx = None
    worker_pool = None
    try:
        if executor == "shm":
            if shard_context is None:
                transient_ctx = ShmReplayContext()
                shard_context = transient_ctx
        elif executor == "process":
            from repro.utils.parallel import ShardWorkerPool

            worker_pool = ShardWorkerPool(region_map.n_regions)
            if current_tracer().enabled:
                worker_pool.set_tracing(
                    [f"shard{r}" for r in range(region_map.n_regions)]
                )

        commits = None
        stats = None
        used_seed = None
        warm_declined = False
        for seed in seeds:
            slices = slices_from_plan(plan, region_map, warm_ready=seed)
            if warm_start is None:
                # The slices copied everything the rounds need; the
                # plan's own arrays (~25% of the slot's working set at
                # 1M users) are only needed again for the warm-start
                # cache update or a cold retry, neither of which can
                # happen here.  Dropping them before the rounds keeps
                # the fixpoint's resident set — and its wall time — at
                # the flat engine's level.
                plan = None
            commits, stats = _run_shard_attempt(
                slices, executor, max_rounds, shard_context, worker_pool
            )
            if commits is not None:
                used_seed = seed
                break
            if seed is not None and warm_start is not None:
                warm_start.note_declined()
                warm_declined = True
    finally:
        if worker_pool is not None:
            worker_pool.close()
        if transient_ctx is not None:
            transient_ctx.close()

    if commits is None:
        return None
    stats.warm_started = used_seed is not None
    stats.warm_declined = warm_declined
    if used_seed is not None:
        stats.warm_seeded_nodes = warm_meta[0]
        stats.warm_invalidated_nodes = warm_meta[1]
    if warm_start is not None:
        wait_sum = np.zeros(plan.n_nodes)
        for c in commits:
            for v, w in c.node_wait.items():
                wait_sum[v] = w
        warm_start.update(plan, wait_sum)
        warm_start.note_rounds(stats.rounds, used_seed is not None)
    cores = slices[0].cores
    return commit_sharded(commits, stats, pool, nodes, req, at, cores)


def replay_slot_sharded_async(
    instance: ProblemInstance,
    placement: Placement,
    routing: Routing,
    pool: InstancePool,
    nodes: Sequence,
    req: np.ndarray,
    at: np.ndarray,
    region_map: RegionMap,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    executor: str = "serial",
    shard_context: Optional[ShmReplayContext] = None,
    warm_start: Optional[WarmStartCache] = None,
    tracer=None,
):
    """Dispatch :func:`replay_slot_sharded` on a background thread.

    Returns an :class:`repro.runtime.pipeline.AsyncSlotReplay` whose
    ``join()`` yields exactly what the synchronous call would have
    returned (or re-raises its error).  The replay thread runs under
    ``tracer`` (a private :class:`repro.obs.Tracer`, or the no-op tracer
    when ``None``) because the ambient tracer's span stack is not
    thread-safe; callers merge the private tracer at join.

    The caller must not mutate ``pool``/``nodes``/the input arrays while
    the replay is in flight — the commit step mutates them from the
    background thread.
    """
    from repro.runtime.pipeline import AsyncSlotReplay

    def _run():
        return replay_slot_sharded(
            instance,
            placement,
            routing,
            pool,
            nodes,
            req,
            at,
            region_map,
            max_rounds=max_rounds,
            executor=executor,
            shard_context=shard_context,
            warm_start=warm_start,
        )

    return AsyncSlotReplay(_run, tracer=tracer)


# ---------------------------------------------------------------------------
# Cluster-level partition containers
# ---------------------------------------------------------------------------


@dataclass
class ClusterShard:
    """Per-region runtime state owned by a :class:`SimulatedCluster`:
    the region's FIFO nodes, its instance-pool groups and (when the
    online solver provides them) its sticky-routing preferences."""

    region: int
    node_ids: np.ndarray
    nodes: list = field(default_factory=list)
    sticky: dict = field(default_factory=dict)

    def pool_keys(self, placement: Placement) -> list[tuple[int, int]]:
        """The (service, node) pool groups hosted in this region."""
        ids = set(self.node_ids.tolist())
        return [
            (svc, node) for svc, node in placement.pairs() if node in ids
        ]


def partition_cluster(
    nodes: Sequence,
    region_map: RegionMap,
    sticky: Optional[dict] = None,
) -> list[ClusterShard]:
    """Group a cluster's node objects (and optional sticky-routing
    preference table keyed ``(service, home)``) into region shards."""
    if region_map.n_nodes != len(nodes):
        raise ValueError(
            f"region map covers {region_map.n_nodes} nodes, cluster has "
            f"{len(nodes)}"
        )
    shards = []
    for r in range(region_map.n_regions):
        ids = region_map.nodes_of(r)
        shard_sticky = {}
        if sticky:
            id_set = set(ids.tolist())
            shard_sticky = {
                key: node
                for key, node in sticky.items()
                if key[1] in id_set
            }
        shards.append(
            ClusterShard(
                region=r,
                node_ids=ids,
                nodes=[nodes[int(v)] for v in ids],
                sticky=shard_sticky,
            )
        )
    return shards
