"""Vectorized fault-free slot replay: the online trace hot path.

The event loop in :mod:`repro.runtime.cluster` processes one heap event
per chain hop — upload, per-stage processing, transfer, return — which
dominates the Fig. 9-10 online experiments once the offline solver is
vectorized.  This module replays an entire slot's requests with NumPy
batch operations instead, producing results **bit-identical** to the
event loop whenever it commits.

Approach
--------
A request's per-stage *ready times* ``r[h, j]`` (the instant stage ``j``'s
input data has arrived) fully determine the slot, because every other
quantity is a deterministic function of them:

* per-(service, node) warm/cold penalties follow from the invocation
  order of each instance, i.e. from sorting ``r`` within the group;
* per-node FIFO core queues admit jobs in ``(node, r)`` order, each
  claiming the earliest-free core (ties to the lowest core index,
  matching ``np.argmin``);
* downstream ready times follow the event loop's exact float
  arithmetic: ``r[j+1] = r[j] + ((finish[j] - r[j]) + transfer[j])``.

The replay runs a **fixed-point iteration**: initialize ``r`` with the
congestion-free lower bound (no queueing, no penalties), then
alternately (a) simulate every node queue and instance pool against the
current ``r`` and (b) propagate the resulting finish times downstream.
When two consecutive rounds produce exactly equal ``r`` arrays the
solution is self-consistent and — absent exact arrival-time ties at a
node, where the event loop's sequence numbers would pick an order this
module cannot see — it is the unique causal schedule, so the replay
commits.  Otherwise (ties detected, no convergence within the round
budget, non-finite transfer coefficients, or a pool inconsistent with
the placement) the replay **declines** by returning ``None`` and the
caller falls back to the event loop; no state is mutated in that case.

Per round, everything is NumPy except the core-claiming scan, a tight
Python loop over the ``(node, r)``-sorted invocations that also
accumulates per-node busy time in the event loop's exact summation
order.  :func:`replay_slot` is the *reference* engine: simple,
single-process, obviously aligned with the event loop.  The slot-static
arrays it builds are factored into :class:`ReplayPlan` so the
region-sharded engine (:mod:`repro.runtime.shard`) can run the same
fixpoint over partitioned state without re-deriving any arithmetic.
The equivalence contract is documented in ``docs/RUNTIME.md`` and
enforced by a Hypothesis property test.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.model.instance import ProblemInstance
from repro.model.placement import Placement, Routing
from repro.runtime.serverless import InstancePool

#: Fixed-point round budget before declining to the event loop.  Light
#: and moderately loaded slots converge in 2-4 rounds; deeply cascaded
#: congestion that needs more than this is rare enough to replay
#: event-driven.
DEFAULT_MAX_ROUNDS = 60


@dataclass(frozen=True)
class ReplayResult:
    """Columnar outcome of one vectorized slot replay.

    Arrays are aligned with the submitted arrival order (the ``request``
    column).  Values are bit-identical to the fields of the
    :class:`repro.runtime.cluster.RequestOutcome` objects the event loop
    would have produced for the same arrivals.
    """

    request: np.ndarray
    start: np.ndarray
    finish: np.ndarray
    queueing: np.ndarray
    cold_start: np.ndarray
    rounds: int

    @property
    def latency(self) -> np.ndarray:
        """Per-request end-to-end latency (``finish − start``)."""
        return self.finish - self.start

    @property
    def n_requests(self) -> int:
        """Number of replayed requests."""
        return int(self.request.size)


def empty_result(req: np.ndarray) -> ReplayResult:
    """The (trivially committed) result of a slot with no arrivals."""
    empty = np.empty(0, dtype=np.float64)
    return ReplayResult(req.copy(), empty, empty.copy(), empty.copy(),
                        empty.copy(), 0)


@dataclass
class ReplayPlan:
    """Slot-static arrays shared by the replay engines.

    Everything here is a pure function of the instance, placement,
    routing, pool warmth and the slot's arrivals — no per-round state.
    ``e_rows``/``e_cols`` enumerate the *edge* invocations (non-cloud
    chain positions) in row-major (request, position) order; that flat
    rank is the deterministic tie-break order every engine must share.
    """

    req: np.ndarray
    at: np.ndarray
    n_req: int
    width: int
    cores: int
    n_nodes: int
    lengths: np.ndarray
    first_ready: np.ndarray
    transfer: np.ndarray
    ret: np.ndarray
    service: np.ndarray
    cloud_mask: np.ndarray
    e_rows: np.ndarray
    e_cols: np.ndarray
    v_edge: np.ndarray
    s_edge: np.ndarray
    svc_edge: np.ndarray
    pooled: np.ndarray
    groups: np.ndarray
    carried: np.ndarray
    keep_alive: float
    cold_penalty: float
    M: np.int64

    @property
    def n_edge(self) -> int:
        """Number of edge-node invocations (rows of the CSR stage table)."""
        return int(self.e_rows.size)

    @property
    def row_idx(self) -> np.ndarray:
        """``arange(n_req)`` — one row index per replayed request."""
        return np.arange(self.n_req)

    @property
    def last_col(self) -> np.ndarray:
        """Per-request index of its final chain stage (``lengths - 1``)."""
        return self.lengths - 1

    # -- fixpoint arithmetic (the exact event-loop float ops) ----------
    def congestion_free_ready(self) -> np.ndarray:
        """Lower-bound initialization: no queueing, no penalties."""
        n_req, width = self.n_req, self.width
        ready = np.zeros((n_req, width), dtype=np.float64)
        ready[:, 0] = self.first_ready
        for j in range(width - 1):
            free_finish = ready[:, j] + self.service[:, j]
            ready[:, j + 1] = np.where(
                self.lengths > j + 1,
                ready[:, j] + ((free_finish - ready[:, j]) + self.transfer[:, j]),
                0.0,
            )
        return ready

    def warm_initial_ready(self, node_wait: np.ndarray) -> np.ndarray:
        """Warm-start initialization: congestion-free plus a per-node
        admission-delay estimate.

        ``node_wait[v]`` is an *estimated* extra delay (queueing plus
        cold-start penalty) each invocation landing on node ``v`` will
        see; the chain recurrence folds it in with the exact event-loop
        float ops, as if every stage finished ``node_wait`` late.  Any
        seed is sound — the fixpoint iteration still only commits a
        converged, tie-free solution, which is the unique causal
        schedule (see the module docstring) — a close one just
        converges in fewer rounds.
        """
        n_req, width = self.n_req, self.width
        extra = np.zeros((n_req, width), dtype=np.float64)
        if self.n_edge:
            extra[self.e_rows, self.e_cols] = node_wait[self.v_edge]
        ready = np.zeros((n_req, width), dtype=np.float64)
        ready[:, 0] = self.first_ready
        for j in range(width - 1):
            free_finish = (ready[:, j] + extra[:, j]) + self.service[:, j]
            ready[:, j + 1] = np.where(
                self.lengths > j + 1,
                ready[:, j] + ((free_finish - ready[:, j]) + self.transfer[:, j]),
                0.0,
            )
        return ready

    def node_signature(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-node ``(invocation counts, service-multiset hash)``.

        The hash is an order-independent (additive, wrapping uint64)
        digest of the *distinct* service ids invoked on each node — it
        changes whenever placement or routing moves a service between
        nodes, which is exactly the invalidation signal the cross-slot
        warm start needs.  It deliberately ignores how *often* each
        service was invoked: per-slot arrival counts always drift, and
        drift within tolerance is the count check's job, not the
        signature's.  Nodes with zero invocations hash to zero.
        """
        counts = np.bincount(self.v_edge, minlength=self.n_nodes)
        sig = np.zeros(self.n_nodes, dtype=np.uint64)
        if self.n_edge:
            n_svc = int(self.svc_edge.max()) + 1
            codes = np.unique(
                self.v_edge.astype(np.int64) * n_svc
                + self.svc_edge.astype(np.int64)
            )
            mixed = ((codes % n_svc).astype(np.uint64) + np.uint64(1)) * np.uint64(
                0x9E3779B97F4A7C15
            )
            np.add.at(sig, codes // n_svc, mixed)
        return counts, sig

    def propagate(self, finish_matrix: np.ndarray) -> np.ndarray:
        """Downstream ready times from a finish matrix (exact float ops)."""
        ready = np.zeros((self.n_req, self.width), dtype=np.float64)
        ready[:, 0] = self.first_ready
        for j in range(self.width - 1):
            nxt = ready[:, j] + (
                (finish_matrix[:, j] - ready[:, j]) + self.transfer[:, j]
            )
            ready[:, j + 1] = np.where(self.lengths > j + 1, nxt, 0.0)
        return ready

    def finish_matrix(
        self, ready: np.ndarray, start_edge: np.ndarray
    ) -> np.ndarray:
        """Per-stage finish times from edge starts plus cloud stages."""
        finish = np.zeros((self.n_req, self.width))
        if self.n_edge:
            finish[self.e_rows, self.e_cols] = start_edge + self.s_edge
        return np.where(self.cloud_mask, ready + self.service, finish)

    def commit_columns(
        self,
        ready: np.ndarray,
        finish_mat: np.ndarray,
        r_edge: np.ndarray,
        start_edge: np.ndarray,
        penalty: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Final (finish, queueing, cold) columns from converged state."""
        n_req, width = self.n_req, self.width
        wait_full = np.zeros((n_req, width))
        pen_full = np.zeros((n_req, width))
        if self.n_edge:
            wait_full[self.e_rows, self.e_cols] = start_edge - (r_edge + penalty)
            pen_full[self.e_rows, self.e_cols] = penalty
        queueing = np.zeros(n_req)
        cold = np.zeros(n_req)
        for j in range(width):  # chain order: the event loop's order
            queueing = queueing + wait_full[:, j]
            cold = cold + pen_full[:, j]
        row_idx, last_col = self.row_idx, self.last_col
        last_ready = ready[row_idx, last_col]
        last_finish = finish_mat[row_idx, last_col]
        finish = last_ready + ((last_finish - last_ready) + self.ret)
        return finish, queueing, cold


def build_replay_plan(
    instance: ProblemInstance,
    placement: Placement,
    routing: Routing,
    pool: InstancePool,
    nodes: Sequence,
    req: np.ndarray,
    at: np.ndarray,
) -> Optional[ReplayPlan]:
    """Derive the slot-static :class:`ReplayPlan`; ``None`` declines.

    Declines mirror :func:`replay_slot`'s eligibility checks: a routing
    matrix too narrow for the slot, heterogeneous core counts, invalid
    assignments, non-finite transfer terms or a pool missing a placed
    group all return ``None`` so the caller can fall back to the event
    loop.
    """
    req = np.asarray(req, dtype=np.int64)
    at = np.asarray(at, dtype=np.float64)
    n_req = int(req.size)
    inst = instance
    lengths = inst.chain_lengths[req]
    width = int(lengths.max())
    assign = routing.assignment
    if assign.ndim != 2 or assign.shape[1] < width:
        return None
    n_nodes = len(nodes)
    if n_nodes:
        cores = nodes[0].cores
        if any(nd.cores != cores for nd in nodes):
            return None
    else:
        cores = 1

    svc = inst.chain_matrix[req, :width]
    asg = assign[req, :width]
    valid = svc >= 0
    cloud = inst.cloud
    if np.any(valid & ((asg < 0) | (asg > cloud))):
        return None

    homes = inst.homes[req]
    inv = inst.inv_rate
    node_c = np.where(valid, asg, cloud)
    svc_c = np.where(valid, svc, 0)

    # Per-invocation service times; identical arithmetic for edge and
    # cloud stages because compute_ext[cloud] == config.cloud_compute.
    service = inst.service_compute[svc_c] / inst.compute_ext[node_c]
    edge_mask = valid & (node_c != cloud)
    cloud_mask = valid & (node_c == cloud)

    # Static transfer terms: upload leg, inter-stage edges, return leg.
    first_ready = at + (inst.data_in[req] * inv[homes, node_c[:, 0]])
    transfer = np.zeros((n_req, width), dtype=np.float64)
    if width > 1:
        edge_flow = inst.edge_data_matrix[req][:, : width - 1]
        transfer[:, : width - 1] = edge_flow * inv[node_c[:, :-1], node_c[:, 1:]]
    row_idx = np.arange(n_req)
    last_col = lengths - 1
    last_node = node_c[row_idx, last_col]
    ret = inst.data_out[req] * inv[last_node, homes]

    if not (
        np.isfinite(first_ready).all()
        and np.isfinite(ret).all()
        and np.isfinite(service[valid]).all()
        and (width <= 1
             or np.isfinite(transfer[:, : width - 1][valid[:, 1:]]).all())
    ):
        return None

    # Flattened edge invocations (row-major: request, then chain position).
    e_rows, e_cols = np.nonzero(edge_mask)
    n_edge = int(e_rows.size)
    v_edge = node_c[e_rows, e_cols]
    s_edge = service[e_rows, e_cols]
    svc_edge = svc_c[e_rows, e_cols]

    # Pool-eligible invocations, grouped by (service, node).
    if n_edge:
        pooled = placement.matrix[svc_edge, v_edge]
    else:
        pooled = np.zeros(0, dtype=bool)
    M = np.int64(max(n_nodes, 1))
    pool_idx = np.nonzero(pooled)[0]
    group_key = svc_edge[pool_idx] * M + v_edge[pool_idx]
    groups = np.unique(group_key)
    carried = np.full(groups.size, np.nan)
    for g, key in enumerate(groups.tolist()):
        svc_g, node_g = divmod(key, int(M))
        if not pool.is_provisioned(svc_g, node_g):
            # The event loop would raise mid-replay; let it.
            return None
        last = pool.last_used(svc_g, node_g)
        if last is not None:
            carried[g] = last

    return ReplayPlan(
        req=req,
        at=at,
        n_req=n_req,
        width=width,
        cores=cores,
        n_nodes=n_nodes,
        lengths=lengths,
        first_ready=first_ready,
        transfer=transfer,
        ret=ret,
        service=service,
        cloud_mask=cloud_mask,
        e_rows=e_rows,
        e_cols=e_cols,
        v_edge=v_edge,
        s_edge=s_edge,
        svc_edge=svc_edge,
        pooled=pooled,
        groups=groups,
        carried=carried,
        keep_alive=pool.config.keep_alive,
        cold_penalty=pool.config.cold_start,
        M=M,
    )


class WarmStartCache:
    """Cross-slot warm start: seed each slot's fixpoint from the
    previous slot's converged per-node congestion.

    After every committed slot the cache records, per node, the mean
    observed admission delay (``start − ready``: queue wait plus
    cold-start penalty), the invocation count, and a service-multiset
    signature (:meth:`ReplayPlan.node_signature`).  The next slot seeds
    its initial ready matrix with those per-node delay estimates —
    **after an invalidation pass**: a node whose signature changed
    (placement/routing moved work) or whose arrival count moved by more
    than ``tolerance`` (relative) is reset to the congestion-free
    estimate of zero, because its remembered congestion no longer
    describes it.

    Correctness does not depend on the estimate: the replay engines
    still iterate to an exactly converged, tie-free fixpoint — the
    unique causal schedule — and a warm attempt that fails to converge
    is retried cold, so committed results (and declines) are
    bit-identical to a cold replay.  Only the round count changes.

    Whether the seed actually *saves* rounds is workload-dependent:
    convergence is exact (``new_ready == ready`` bit-for-bit), so a
    seed only collapses the iteration when it lands very close to the
    fixpoint, and arrivals are redrawn every slot.  The cache therefore
    measures itself.  Every ``probe_every``-th slot runs unseeded — a
    *probe* whose round count is exactly the cold baseline, because the
    committed bits (and therefore the carried pool/node state) are
    identical either way — and only probe/unseeded rounds feed a
    baseline EMA.  A seeded slot that fails to beat the EMA by at least
    one round earns a *strike*; ``strike_limit`` consecutive strikes
    set :attr:`suppressed` and stop further seeding, bounding the worst
    case at a handful of probe windows while leaving the upside open on
    traces whose congestion is stable enough to seed accurately.
    """

    def __init__(
        self,
        n_nodes: int,
        tolerance: float = 0.25,
        strike_limit: int = 3,
        probe_every: int = 4,
    ):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        if strike_limit <= 0:
            raise ValueError(
                f"strike_limit must be positive, got {strike_limit}"
            )
        if probe_every < 2:
            raise ValueError(
                f"probe_every must be >= 2, got {probe_every}"
            )
        self.n_nodes = int(n_nodes)
        self.tolerance = float(tolerance)
        self.strike_limit = int(strike_limit)
        self.probe_every = int(probe_every)
        self._wait = np.zeros(self.n_nodes)
        self._count = np.zeros(self.n_nodes, dtype=np.int64)
        self._sig = np.zeros(self.n_nodes, dtype=np.uint64)
        #: Whether at least one slot has been recorded.
        self.primed = False
        #: Telemetry of the most recent :meth:`initial_ready` call.
        self.last_attempted = False
        self.last_used = False
        self.last_seeded_nodes = 0
        self.last_invalidated_nodes = 0
        #: Warm attempts that failed to converge and were retried cold.
        self.declined = 0
        #: Slots whose committed fixpoint ran from a warm seed.
        self.warm_slots = 0
        #: EMA of committed round counts (0.0 until the first slot).
        self.ema_rounds = 0.0
        #: Consecutive seeded slots that failed to beat the EMA.
        self.strikes = 0
        #: Set once ``strike_limit`` strikes accumulate; no further
        #: seeds are offered (the cache keeps recording state).
        self.suppressed = False
        self._slot_i = 0

    def initial_ready(self, plan: ReplayPlan) -> Optional[np.ndarray]:
        """Warm seed for ``plan``'s fixpoint, or ``None`` when the cache
        is unprimed, suppressed, probing the cold baseline this slot,
        or invalidation zeroed every estimate."""
        probe = self._slot_i % self.probe_every == 0
        self.last_attempted = (
            self.primed and not self.suppressed and not probe
        )
        self.last_used = False
        self.last_seeded_nodes = 0
        self.last_invalidated_nodes = 0
        if not self.last_attempted:
            return None
        counts, sig = plan.node_signature()
        n = min(counts.size, self.n_nodes)
        counts, sig = counts[:n], sig[:n]
        prev_c = self._count[:n]
        stable = (
            (prev_c > 0)
            & (sig == self._sig[:n])
            & (np.abs(counts - prev_c) <= self.tolerance * prev_c)
        )
        active = counts > 0
        self.last_invalidated_nodes = int(np.count_nonzero(active & ~stable))
        est = np.zeros(plan.n_nodes)
        seeded = stable & active & (self._wait[:n] > 0.0)
        est[:n][seeded] = self._wait[:n][seeded]
        self.last_seeded_nodes = int(np.count_nonzero(seeded))
        if self.last_seeded_nodes == 0:
            return None
        self.last_used = True
        return plan.warm_initial_ready(est)

    def update(
        self,
        plan: ReplayPlan,
        wait_sum: np.ndarray,
        counts: Optional[np.ndarray] = None,
    ) -> None:
        """Record a committed slot: per-node summed admission delays
        (``wait_sum``, aligned with node ids) and the plan's signature."""
        counts_plan, sig = plan.node_signature()
        if counts is None:
            counts = counts_plan
        n = min(self.n_nodes, int(wait_sum.size))
        self._wait[:] = 0.0
        self._count[:] = 0
        self._sig[:] = 0
        self._wait[:n] = wait_sum[:n] / np.maximum(counts[:n], 1)
        self._count[: min(self.n_nodes, counts.size)] = counts[: self.n_nodes]
        self._sig[: min(self.n_nodes, sig.size)] = sig[: self.n_nodes]
        self.primed = True

    def note_rounds(self, rounds: int, seeded: bool) -> None:
        """Fold a committed slot's round count into the self-measuring
        gate.  Unseeded (probe) rounds update the cold-baseline EMA; a
        seeded slot that beats the EMA by at least one round clears the
        strike count, one that fails to earns a strike, and
        :attr:`suppressed` latches at ``strike_limit``."""
        rounds = int(rounds)
        self._slot_i += 1
        if seeded:
            self.warm_slots += 1
            if self.ema_rounds > 0.0:
                if self.ema_rounds - rounds >= 1.0:
                    self.strikes = 0
                else:
                    self.strikes += 1
                    if self.strikes >= self.strike_limit:
                        self.suppressed = True
        else:
            # probe / cold slot: the committed bits are seed-invariant,
            # so this round count IS the cold counterfactual
            self.ema_rounds = (
                float(rounds)
                if self.ema_rounds <= 0.0
                else 0.5 * (self.ema_rounds + rounds)
            )

    def note_declined(self) -> None:
        """A warm attempt failed to converge and was retried cold: the
        whole seeded fixpoint was wasted, which is the worst outcome —
        it both counts as a decline and earns a strike."""
        self.declined += 1
        self.last_used = False
        self.strikes += 1
        if self.strikes >= self.strike_limit:
            self.suppressed = True


def node_wait_sums(
    plan: ReplayPlan, r_edge: np.ndarray, start_edge: np.ndarray
) -> np.ndarray:
    """Per-node summed admission delays from a converged flat replay."""
    if not plan.n_edge:
        return np.zeros(plan.n_nodes)
    return np.bincount(
        plan.v_edge, weights=start_edge - r_edge, minlength=plan.n_nodes
    )


def pool_penalties(
    plan: ReplayPlan,
    p_idx: np.ndarray,
    r_edge: np.ndarray,
    penalty: np.ndarray,
    group_last_arr: np.ndarray,
) -> tuple[int, int]:
    """Warm/cold resolution for one node's pooled invocations.

    ``p_idx`` must be in ascending flat-rank order; ``penalty`` and
    ``group_last_arr`` are written in place.  Returns ``(n_cold,
    n_warm)``.  This is the exact warmth rule of
    :meth:`repro.runtime.serverless.InstancePool.invoke` applied in
    ready order within each (service, node) group.
    """
    if not p_idx.size:
        return 0, 0
    r_p = r_edge[p_idx]
    key_p = plan.svc_edge[p_idx] * plan.M + plan.v_edge[p_idx]
    order_p = np.lexsort((r_p, key_p))
    keys_s = key_p[order_p]
    times_s = r_p[order_p]
    is_first = np.empty(keys_s.size, dtype=bool)
    is_first[0] = True
    np.not_equal(keys_s[1:], keys_s[:-1], out=is_first[1:])
    prev = np.empty_like(times_s)
    prev[0] = 0.0
    prev[1:] = times_s[:-1]
    g_of = np.searchsorted(plan.groups, keys_s)
    warm = np.where(
        is_first,
        (times_s - plan.carried[g_of]) <= plan.keep_alive,
        (times_s - prev) <= plan.keep_alive,
    )
    penalty[p_idx[order_p]] = np.where(warm, 0.0, plan.cold_penalty)
    last_pos = np.nonzero(np.append(is_first[1:], True))[0]
    group_last_arr[g_of[last_pos]] = times_s[last_pos]
    n_cold = int(np.count_nonzero(~warm))
    return n_cold, int(warm.size - n_cold)


def replay_slot(
    instance: ProblemInstance,
    placement: Placement,
    routing: Routing,
    pool: InstancePool,
    nodes: Sequence,
    req: np.ndarray,
    at: np.ndarray,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    warm_start: Optional[WarmStartCache] = None,
) -> Optional[ReplayResult]:
    """Replay arrivals ``(req[i], at[i])`` in batch; ``None`` declines.

    ``nodes`` is the cluster's list of fresh ``_Node`` objects (all cores
    idle at time 0, zero accumulated busy time); on success their
    ``core_free`` / ``busy_time`` are advanced exactly as the event loop
    would have and the ``pool``'s warmth, cold-start and warm-hit
    counters are updated in bulk.  On ``None`` nothing is mutated and the
    caller must run the event loop instead.  The caller is responsible
    for input validation and for ensuring no fault injector or
    resilience policy is active.

    ``warm_start`` optionally supplies a :class:`WarmStartCache`: the
    fixpoint is seeded from the previous slot's converged per-node
    congestion (fewer rounds, same committed bits) and the cache is
    updated from this slot's converged state on commit.  A warm attempt
    that fails to converge or lands on a tie is retried from the cold
    congestion-free seed before declining, so decline decisions match
    the cold path exactly.
    """
    req = np.asarray(req, dtype=np.int64)
    at = np.asarray(at, dtype=np.float64)
    if req.size == 0:
        return empty_result(req)
    plan = build_replay_plan(instance, placement, routing, pool, nodes, req, at)
    if plan is None:
        return None

    n_req, width, cores = plan.n_req, plan.width, plan.cores
    n_nodes, n_edge = plan.n_nodes, plan.n_edge
    e_rows, e_cols = plan.e_rows, plan.e_cols
    v_edge, s_edge = plan.v_edge, plan.s_edge
    groups, M = plan.groups, plan.M

    # Per-node static index structures.  A node's queue/pool outcome
    # depends only on its own invocations' ready times, so each round
    # re-simulates just the nodes whose inputs changed since the
    # previous round (incremental Jacobi sweep); untouched nodes keep
    # their cached schedule, penalties, busy sums and core states.
    pool_idx = np.nonzero(plan.pooled)[0]
    node_inv = [np.nonzero(v_edge == v)[0] for v in range(n_nodes)]
    if pool_idx.size:
        pool_node = v_edge[pool_idx]
        node_pool = [pool_idx[pool_node == v] for v in range(n_nodes)]
    else:
        node_pool = [np.empty(0, dtype=np.int64) for _ in range(n_nodes)]

    # Mutable per-round state, updated only for changed nodes.
    penalty = np.zeros(n_edge)
    start_edge = np.zeros(n_edge)
    busy_arr = [0.0] * n_nodes
    core_state = [[0.0] * cores for _ in range(n_nodes)]
    group_last_arr = np.full(groups.size, np.nan)
    n_cold_arr = [0] * n_nodes
    n_warm_arr = [0] * n_nodes
    tied_arr = [False] * n_nodes

    def _sim_node(v: int, r_edge: np.ndarray) -> None:
        """Re-simulate node ``v``'s pool warmth and FIFO core queue."""
        idx = node_inv[v]
        if idx.size == 0:
            return
        n_cold, n_warm = pool_penalties(
            plan, node_pool[v], r_edge, penalty, group_last_arr
        )
        n_cold_arr[v] = n_cold
        n_warm_arr[v] = n_warm

        r_v = r_edge[idx]
        order = np.argsort(r_v, kind="stable")
        r_sorted = r_v[order]
        # Exact same-node ready ties are event-order dependent.  A tie
        # only invalidates the result if it survives into the converged
        # round — intermediate iterates may tie while the fixpoint
        # itself is tie-free — so it is recorded per node and checked
        # at convergence.  The stable argsort keeps tied invocations in
        # their deterministic flattened (request, position) order.
        tied_arr[v] = bool(
            r_sorted.size > 1 and np.any(r_sorted[1:] == r_sorted[:-1])
        )
        sel = idx[order]
        admit = (r_edge[sel] + penalty[sel]).tolist()
        work = s_edge[sel].tolist()
        starts: list[float] = []
        push = starts.append
        busy = 0.0
        if cores == 1:
            f0 = 0.0
            for a, w in zip(admit, work):
                st = a if a > f0 else f0
                f0 = st + w
                busy += w
                push(st)
            core_state[v] = [f0]
        elif cores == 2:
            # unrolled two-core argmin: first core wins exact ties,
            # matching np.argmin's first-minimum rule
            f0 = f1 = 0.0
            for a, w in zip(admit, work):
                if f0 <= f1:
                    st = a if a > f0 else f0
                    f0 = st + w
                else:
                    st = a if a > f1 else f1
                    f1 = st + w
                busy += w
                push(st)
            core_state[v] = [f0, f1]
        else:
            # (free, core_idx) heap pops the earliest-free lowest-index
            # core, matching np.argmin over the core_free vector
            heap = [(0.0, c) for c in range(cores)]
            free = [0.0] * cores
            for a, w in zip(admit, work):
                x, c = heapq.heappop(heap)
                st = a if a > x else x
                fin = st + w
                heapq.heappush(heap, (fin, c))
                free[c] = fin
                busy += w
                push(st)
            core_state[v] = free
        busy_arr[v] = busy
        start_edge[sel] = starts

    # Initialization: the congestion-free lower bound, or — when a
    # primed warm-start cache supplies one — the previous slot's
    # estimated congestion.  A warm attempt that fails (no convergence,
    # or a tie in its fixpoint) falls back to the cold seed so decline
    # decisions are exactly those of the cold path.
    warm_seed = (
        warm_start.initial_ready(plan) if warm_start is not None else None
    )
    seeds = [warm_seed, None] if warm_seed is not None else [None]

    success = False
    for attempt, seed in enumerate(seeds):
        if attempt:
            # cold retry: wipe the per-node state the warm attempt wrote
            penalty[:] = 0.0
            start_edge[:] = 0.0
            busy_arr[:] = [0.0] * n_nodes
            core_state[:] = [[0.0] * cores for _ in range(n_nodes)]
            group_last_arr[:] = np.nan
            n_cold_arr[:] = [0] * n_nodes
            n_warm_arr[:] = [0] * n_nodes
            tied_arr[:] = [False] * n_nodes
        ready = plan.congestion_free_ready() if seed is None else seed

        prev_r_edge: Optional[np.ndarray] = None
        r_edge = np.zeros(n_edge)
        rounds = 0
        converged = False
        while rounds < max_rounds:
            rounds += 1
            r_edge = ready[e_rows, e_cols]
            if prev_r_edge is None:
                changed_nodes = list(range(n_nodes))
            else:
                diff = r_edge != prev_r_edge
                changed_nodes = (
                    np.unique(v_edge[diff]).tolist() if diff.any() else []
                )
            for v in changed_nodes:
                _sim_node(v, r_edge)
            prev_r_edge = r_edge

            finish_matrix = plan.finish_matrix(ready, start_edge)
            new_ready = plan.propagate(finish_matrix)
            if np.array_equal(new_ready, ready):
                converged = True
                break
            ready = new_ready
        if converged and not any(tied_arr):
            success = True
            break
        if seed is not None and warm_start is not None:
            warm_start.note_declined()
    if not success:
        # no convergence, or the fixpoint carries an exact same-node
        # ready tie: the event loop's seq-order tie-break is
        # authoritative
        return None

    # ---- commit: build the columnar result ---------------------------
    finish, queueing, cold = plan.commit_columns(
        ready, finish_matrix, r_edge, start_edge, penalty
    )

    # ---- commit: advance pool and node state -------------------------
    if pool_idx.size:
        updates = {}
        for g, key in enumerate(groups.tolist()):
            svc_g, node_g = divmod(key, int(M))
            updates[(svc_g, node_g)] = group_last_arr[g]
        pool.commit_batch(updates, sum(n_cold_arr), sum(n_warm_arr))
    for v, nd in enumerate(nodes):
        nd.busy_time += busy_arr[v]
        free = core_state[v]
        for c in range(cores):
            nd.core_free[c] = free[c]
    if warm_start is not None:
        warm_start.update(plan, node_wait_sums(plan, r_edge, start_edge))
        warm_start.note_rounds(rounds, seed is not None)

    return ReplayResult(
        request=req.copy(),
        start=at.copy(),
        finish=finish,
        queueing=queueing,
        cold_start=cold,
        rounds=rounds,
    )
