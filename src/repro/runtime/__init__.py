"""Serverless edge-cluster runtime: the Kubernetes-testbed substitute.

The paper validates SoCL on a 17-machine Kubernetes testbed (16 edge
nodes + 1 master) with users issuing requests every ~5 minutes over 4
hours (Figs. 9-10).  Per DESIGN.md §2 we reproduce that environment with
a discrete-event simulation:

* :mod:`repro.runtime.events` — minimal deterministic DES engine;
* :mod:`repro.runtime.serverless` — cold/warm instance lifecycle with
  keep-alive expiry (the "warm instances in the nearby area" the paper's
  storage planning enables);
* :mod:`repro.runtime.replay` — vectorized fault-free slot replay,
  bit-identical to the event loop (the online trace hot path);
* :mod:`repro.runtime.shard` — region-sharded replay at 1M-user scale:
  per-region state isolated into ``RegionShard`` objects, cross-region
  chain hops reconciled with bounded exchange rounds, bit-identical to
  the flat replay;
* :mod:`repro.runtime.cluster` — edge nodes with FIFO compute queues,
  network transfers over the substrate topology, a master that dispatches
  requests along their routed chains and records latency;
* :mod:`repro.runtime.simulator` — the time-slotted online driver:
  mobility moves users each slot, the provisioning algorithm re-runs,
  and the cluster replays the slot's requests;
* :mod:`repro.runtime.pipeline` — pipelined slot execution: slot *t*'s
  replay runs on a background thread while slot *t+1*'s window
  generation and solve proceed in the main process, bit-identical to
  the serial loop;
* :mod:`repro.runtime.metrics` — latency aggregation (mean/median/max
  per slot, percentiles) matching the paper's reporting;
* :mod:`repro.runtime.failures` — slot-level node outages degraded out
  of the solvable state before each provision;
* :mod:`repro.runtime.resilience` — request-level fault injection
  (degraded links, instance crashes) and the retry / hedging / timeout /
  shedding policies that absorb them;
* :mod:`repro.runtime.autoscale` — the reactive feedback-control loop
  over the serverless pools: utilization/queueing monitoring, hysteresis
  scaling rules with cooldowns, warm-pool sizing, and the pure-reactive
  provisioning baseline (docs/AUTOSCALING.md).

The full runtime model is documented in ``docs/RUNTIME.md``.
"""

from repro.runtime.events import EventQueue, Event
from repro.runtime.serverless import InstancePool, InstanceState, ServerlessConfig
from repro.runtime.cluster import SimulatedCluster, RequestOutcome
from repro.runtime.replay import ReplayResult, WarmStartCache, replay_slot
from repro.runtime.shard import (
    RegionMap,
    RegionShard,
    ShardStats,
    ShardedReplayResult,
    ShmReplayContext,
    replay_slot_sharded,
    replay_slot_sharded_async,
    resolve_shard_executor,
)
from repro.runtime.pipeline import AsyncSlotReplay, resolve_pipeline
from repro.runtime.autoscale import (
    AutoscaleConfig,
    Autoscaler,
    ScalingAction,
    ScalingPolicy,
    StaticProvisioner,
    UtilizationMonitor,
)
from repro.runtime.simulator import OnlineSimulator, SlotRecord, OnlineTraceResult
from repro.runtime.metrics import LatencyRecorder, summarize_latencies
from repro.runtime.failures import DegradationPolicy, OutageSchedule, degrade_instance
from repro.runtime.resilience import (
    FaultConfig,
    FaultInjector,
    ResiliencePolicy,
    SlotFaults,
    shed_indices,
)

__all__ = [
    "EventQueue",
    "Event",
    "InstancePool",
    "InstanceState",
    "ServerlessConfig",
    "SimulatedCluster",
    "RequestOutcome",
    "ReplayResult",
    "WarmStartCache",
    "replay_slot",
    "RegionMap",
    "RegionShard",
    "ShardStats",
    "ShardedReplayResult",
    "ShmReplayContext",
    "replay_slot_sharded",
    "replay_slot_sharded_async",
    "AsyncSlotReplay",
    "resolve_pipeline",
    "resolve_shard_executor",
    "AutoscaleConfig",
    "Autoscaler",
    "ScalingAction",
    "ScalingPolicy",
    "StaticProvisioner",
    "UtilizationMonitor",
    "OnlineSimulator",
    "SlotRecord",
    "OnlineTraceResult",
    "LatencyRecorder",
    "summarize_latencies",
    "OutageSchedule",
    "DegradationPolicy",
    "degrade_instance",
    "FaultConfig",
    "FaultInjector",
    "SlotFaults",
    "ResiliencePolicy",
    "shed_indices",
]
