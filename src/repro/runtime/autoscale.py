"""Reactive autoscaling: a feedback-control loop over the serverless pools.

SoCL pre-provisions instances statically per slot (Alg. 2); real
serverless edge platforms scale **reactively** from utilization
feedback.  This module closes that gap with a Guardian/Scaler-style
control loop that runs at the slot boundary of the online simulator
(:class:`repro.runtime.simulator.OnlineSimulator`):

* :class:`UtilizationMonitor` — derives per-service utilization,
  queueing-pressure and cloud-spill signals from the telemetry the
  runtime already produces (per-node busy time from
  :class:`~repro.runtime.cluster.SimulatedCluster`, per-request
  queueing delays from the replay engine, routing-derived invocation
  counts), smoothed with an exponential moving average so one noisy
  slot cannot flap the policy;
* :class:`ScalingPolicy` — threshold rules with a **hysteresis band**
  (scale up above the high watermark, down below the low watermark,
  hold in between), per-service **cooldowns** for each direction, and a
  **warm-pool sizing** policy that keeps a configurable fraction of
  each service's replicas pre-warmed;
* :class:`Scaler` — applies the decided actions against the live
  decision state: replica additions/removals edit a
  :class:`~repro.model.placement.Placement` copy (budget- and
  storage-feasible only) and re-route exactly the affected requests via
  :func:`repro.model.routing.partial_reroute`; prewarm/evict actions
  touch the :class:`~repro.runtime.serverless.InstancePool` directly.

The :class:`Autoscaler` facade composes the three and is what the
simulator talks to.  ``reactive=True`` turns it into the pure-reactive
baseline: the solver's per-slot placement is ignored after the first
slot and the replica set evolves *only* through feedback actions —
pair it with :class:`StaticProvisioner` so no per-slot global solve
happens at all.

Every decision is deterministic given the observed telemetry, all
actions are counted under ``runtime.autoscale.*`` (see
docs/OBSERVABILITY.md), and with ``enabled=False`` (or no autoscaler at
all) the simulation is **bit-identical** to the static pipeline — the
contract every runtime layer in this repo honors (docs/RUNTIME.md §8).
The full scaling model is documented in docs/AUTOSCALING.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.model.cost import deployment_cost
from repro.model.instance import ProblemInstance
from repro.model.placement import Placement, Routing
from repro.model.routing import greedy_routing, partial_reroute
from repro.obs import current_tracer
from repro.runtime.serverless import InstancePool
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs of the feedback-control loop (docs/AUTOSCALING.md).

    ``high_watermark`` / ``low_watermark`` bound the hysteresis band on
    the per-service pressure signal: above the high watermark a service
    scales up, below the low watermark it scales down, inside the band
    it holds.  ``queue_high`` is an absolute queueing-delay trigger
    (seconds of smoothed per-request queue wait) that forces scale-up
    even at moderate utilization.  ``scale_up_cooldown`` /
    ``scale_down_cooldown`` are the slots a service must wait after an
    action before acting in the same direction again.  ``warm_fraction``
    sizes the keep-warm pool (fraction of each service's replicas
    pre-warmed at the slot boundary, ``warm_floor`` at minimum for
    services with traffic); ``min_replicas`` floors scale-down (0
    allows scale-to-zero with cloud fallback).  ``max_step`` caps
    replicas added or removed per service per slot.  ``ema_alpha``
    weights the newest observation in the signal smoothing.
    ``enabled=False`` turns every hook into a no-op (bit-identity).
    """

    high_watermark: float = 0.65
    low_watermark: float = 0.25
    queue_high: float = 1.0
    scale_up_cooldown: int = 0
    scale_down_cooldown: int = 2
    warm_fraction: float = 0.5
    warm_floor: int = 1
    min_replicas: int = 1
    max_step: int = 1
    ema_alpha: float = 0.6
    enabled: bool = True

    def __post_init__(self) -> None:
        check_probability("high_watermark", self.high_watermark)
        check_probability("low_watermark", self.low_watermark)
        if self.low_watermark >= self.high_watermark:
            raise ValueError(
                f"low_watermark ({self.low_watermark}) must be below "
                f"high_watermark ({self.high_watermark})"
            )
        check_non_negative("queue_high", self.queue_high)
        check_non_negative("scale_up_cooldown", self.scale_up_cooldown)
        check_non_negative("scale_down_cooldown", self.scale_down_cooldown)
        check_probability("warm_fraction", self.warm_fraction)
        check_non_negative("warm_floor", self.warm_floor)
        check_non_negative("min_replicas", self.min_replicas)
        if self.max_step < 1:
            raise ValueError(f"max_step must be >= 1, got {self.max_step}")
        check_probability("ema_alpha", self.ema_alpha)
        if self.ema_alpha == 0.0:
            raise ValueError("ema_alpha must be > 0 (signals would never update)")


@dataclass
class ServiceSignal:
    """Smoothed telemetry for one service, as seen by the policy.

    ``utilization`` is the invocation-weighted busy fraction of the
    nodes serving the service; ``queueing`` the mean per-request queue
    wait (seconds) of requests whose chain contains it; ``cloud_share``
    the fraction of its invocations that spilled to the cloud;
    ``invocations`` the smoothed per-slot invocation count; and
    ``node_rate`` the smoothed per-edge-node invocation rate used for
    victim selection and warm-pool ranking.
    """

    utilization: float = 0.0
    queueing: float = 0.0
    cloud_share: float = 0.0
    invocations: float = 0.0
    node_rate: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def pressure(self) -> float:
        """Scalar scaling pressure: max of utilization and cloud spill."""
        return max(self.utilization, self.cloud_share)


@dataclass(frozen=True)
class ScalingAction:
    """One decided autoscaling action.

    ``kind`` is ``"up"`` (add a replica), ``"down"`` (remove one),
    ``"prewarm"`` (pre-warm a provisioned instance at the slot start)
    or ``"evict"`` (drop an instance's warmth to reclaim memory).
    """

    kind: str
    service: int
    node: int

    def __post_init__(self) -> None:
        if self.kind not in ("up", "down", "prewarm", "evict"):
            raise ValueError(f"unknown action kind {self.kind!r}")


class UtilizationMonitor:
    """Derives smoothed per-service scaling signals from slot telemetry.

    Fed once per slot (after replay) with the cluster's per-node busy
    times, the slot's routing, and the per-request queueing delays; all
    raw signals are folded into exponential moving averages so the
    policy reacts to sustained pressure, not single-slot noise.
    """

    def __init__(self, alpha: float = 0.6):
        check_probability("alpha", alpha)
        self.alpha = float(alpha)
        self._signals: dict[int, ServiceSignal] = {}
        #: Number of slots observed so far.
        self.slots_observed = 0

    def _ema(self, prev: float, raw: float) -> float:
        """One smoothing step (first observation passes through)."""
        if self.slots_observed == 0:
            return raw
        return self.alpha * raw + (1.0 - self.alpha) * prev

    def observe(
        self,
        instance: ProblemInstance,
        routing: Routing,
        cluster,
        requests: np.ndarray,
        queueing: np.ndarray,
        slot_seconds: float,
    ) -> None:
        """Fold one completed slot's telemetry into the signals.

        ``cluster`` is the slot's :class:`~repro.runtime.cluster.
        SimulatedCluster` (per-node ``busy_time`` is read from its
        nodes); ``requests``/``queueing`` are aligned arrays of
        completed request indices and their total queue waits.
        """
        S, N = instance.n_services, instance.n_servers
        busy = np.array([n.busy_time for n in cluster.nodes], dtype=np.float64)
        cores = np.array([n.cores for n in cluster.nodes], dtype=np.float64)
        node_util = busy / np.maximum(cores * slot_seconds, 1e-12)

        mask = instance.chain_mask
        svc_m = instance.chain_matrix[mask]
        node_m = routing.assignment[mask]
        counts = np.zeros((S, N + 1), dtype=np.float64)
        np.add.at(counts, (svc_m, node_m), 1.0)
        edge_counts = counts[:, :N]
        cloud_counts = counts[:, N]
        total = edge_counts.sum(axis=1) + cloud_counts

        qsum = np.zeros(S)
        qcnt = np.zeros(S)
        requests = np.asarray(requests, dtype=np.int64)
        queueing = np.asarray(queueing, dtype=np.float64)
        if requests.size:
            rmask = instance.chain_mask[requests]
            rsvc = instance.chain_matrix[requests]
            qrep = np.broadcast_to(queueing[:, None], rmask.shape)
            np.add.at(qsum, rsvc[rmask], qrep[rmask])
            np.add.at(qcnt, rsvc[rmask], 1.0)

        for svc in range(S):
            if total[svc] == 0.0 and svc not in self._signals:
                continue  # never requested, nothing to track
            edge = edge_counts[svc]
            edge_total = edge.sum()
            util = (
                float((edge * node_util).sum() / edge_total)
                if edge_total > 0.0
                else 0.0
            )
            cloud_share = (
                float(cloud_counts[svc] / total[svc]) if total[svc] > 0.0 else 0.0
            )
            queue = float(qsum[svc] / qcnt[svc]) if qcnt[svc] > 0.0 else 0.0
            prev = self._signals.get(svc)
            if prev is None or prev.node_rate.size != N:
                prev = ServiceSignal(node_rate=np.zeros(N))
            self._signals[svc] = ServiceSignal(
                utilization=self._ema(prev.utilization, util),
                queueing=self._ema(prev.queueing, queue),
                cloud_share=self._ema(prev.cloud_share, cloud_share),
                invocations=self._ema(prev.invocations, float(total[svc])),
                node_rate=(
                    edge
                    if self.slots_observed == 0
                    else self.alpha * edge + (1.0 - self.alpha) * prev.node_rate
                ),
            )
        self.slots_observed += 1

    def signals(self) -> dict[int, ServiceSignal]:
        """Current smoothed signals, keyed by service index."""
        return dict(self._signals)

    def signal(self, service: int) -> Optional[ServiceSignal]:
        """Smoothed signal for one service (``None`` if never observed)."""
        return self._signals.get(service)


class ScalingPolicy:
    """Threshold rules with hysteresis, cooldowns and warm-pool sizing.

    Stateful only in its per-service cooldown clocks; every decision is
    a pure function of the smoothed signals and the current placement.
    """

    def __init__(self, config: AutoscaleConfig = AutoscaleConfig()):
        self.config = config
        self._last_up: dict[int, int] = {}
        self._last_down: dict[int, int] = {}

    def _feasible_target(
        self,
        instance: ProblemInstance,
        placement: Placement,
        svc: int,
        used: np.ndarray,
        spent: float,
    ) -> Optional[int]:
        """Best feasible node for a new replica (demand-weighted), or None.

        Candidates are ranked by demand-weighted transfer cost (the same
        coverage heuristic the ROI baseline uses); storage and budget
        constraints are enforced before a node qualifies.
        """
        kappa = float(instance.service_cost[svc])
        if spent + kappa > instance.config.budget + 1e-9:
            return None
        phi = float(instance.service_storage[svc])
        demand_nodes = np.nonzero(instance.demand_counts[svc] > 0)[0]
        if demand_nodes.size == 0:
            demand_nodes = np.arange(instance.n_servers)
        weights = np.maximum(
            instance.demand_counts[svc, demand_nodes].astype(np.float64), 1.0
        )
        inv = instance.inv_rate
        score = (
            weights[:, None] * inv[np.ix_(demand_nodes, np.arange(instance.n_servers))]
        ).sum(axis=0)
        for k in (int(v) for v in np.argsort(score, kind="stable")):
            if placement.has(svc, k):
                continue
            if used[k] + phi > instance.server_storage[k] + 1e-9:
                continue
            return k
        return None

    def decide(
        self,
        slot: int,
        signals: dict[int, ServiceSignal],
        instance: ProblemInstance,
        placement: Placement,
    ) -> tuple[list[ScalingAction], int, int]:
        """Decide this slot's replica deltas.

        Returns ``(actions, held, suppressed)``: the up/down actions to
        apply, the number of services held inside the hysteresis band,
        and the number of triggered actions suppressed by a cooldown.
        """
        cfg = self.config
        actions: list[ScalingAction] = []
        held = 0
        suppressed = 0
        used = instance.service_storage.astype(np.float64) @ placement.matrix
        spent = deployment_cost(instance, placement)
        for svc in sorted(signals):
            sig = signals[svc]
            n_replicas = placement.instance_count(svc)
            wants_up = (
                sig.pressure > cfg.high_watermark or sig.queueing > cfg.queue_high
            )
            wants_down = (
                sig.pressure < cfg.low_watermark
                and sig.queueing <= cfg.queue_high
                and n_replicas > cfg.min_replicas
            )
            if wants_up:
                last = self._last_up.get(svc)
                if last is not None and slot - last <= cfg.scale_up_cooldown:
                    suppressed += 1
                    continue
                added = 0
                for _ in range(cfg.max_step):
                    target = self._feasible_target(
                        instance, placement, svc, used, spent
                    )
                    if target is None:
                        break
                    actions.append(ScalingAction("up", svc, target))
                    # account locally so multi-step picks stay feasible
                    placement = placement.copy() if added == 0 else placement
                    placement.add(svc, target)
                    used[target] += float(instance.service_storage[svc])
                    spent += float(instance.service_cost[svc])
                    added += 1
                if added:
                    self._last_up[svc] = slot
            elif wants_down:
                last = self._last_down.get(svc)
                if last is not None and slot - last <= cfg.scale_down_cooldown:
                    suppressed += 1
                    continue
                removed = 0
                hosts = placement.hosts(svc)
                rate = (
                    sig.node_rate
                    if sig.node_rate.size == instance.n_servers
                    else np.zeros(instance.n_servers)
                )
                order = sorted(
                    (int(k) for k in hosts), key=lambda k: (rate[k], k)
                )
                for victim in order[: cfg.max_step]:
                    if placement.instance_count(svc) - removed <= cfg.min_replicas:
                        break
                    actions.append(ScalingAction("down", svc, victim))
                    removed += 1
                if removed:
                    self._last_down[svc] = slot
            else:
                held += 1
        return actions, held, suppressed

    def warm_plan(
        self,
        signals: dict[int, ServiceSignal],
        placement: Placement,
        pool: Optional[InstancePool] = None,
    ) -> list[ScalingAction]:
        """Warm-pool sizing: which instances to pre-warm or let go cold.

        Per service, the top ``ceil(warm_fraction × replicas)`` hosts by
        smoothed invocation rate (at least ``warm_floor`` for services
        with traffic) are pre-warmed at the slot start; remaining hosts
        are evicted so idle replicas stop holding memory.  With
        ``warm_fraction=1.0`` every replica stays warm and nothing is
        evicted.
        """
        cfg = self.config
        plan: list[ScalingAction] = []
        for svc in sorted(signals):
            sig = signals[svc]
            hosts = placement.hosts(svc)
            if hosts.size == 0:
                continue
            target = int(math.ceil(cfg.warm_fraction * hosts.size))
            if sig.invocations > 0.0:
                target = max(target, min(cfg.warm_floor, hosts.size))
            rate = (
                sig.node_rate
                if sig.node_rate.size >= hosts.max() + 1
                else np.zeros(int(hosts.max()) + 1)
            )
            ranked = sorted(
                (int(k) for k in hosts), key=lambda k: (-rate[k], k)
            )
            for k in ranked[:target]:
                plan.append(ScalingAction("prewarm", svc, k))
            for k in ranked[target:]:
                plan.append(ScalingAction("evict", svc, k))
        return plan


@dataclass
class AutoscaleStats:
    """Cumulative action counters of one :class:`Autoscaler` run."""

    slots: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    prewarms: int = 0
    evictions: int = 0
    holds: int = 0
    suppressed_cooldown: int = 0
    reroutes: int = 0


class Scaler:
    """Applies decided actions against the placement, routing and pool."""

    def apply_scaling(
        self,
        instance: ProblemInstance,
        placement: Placement,
        routing: Routing,
        actions: Sequence[ScalingAction],
    ) -> tuple[Placement, Routing, bool]:
        """Apply up/down actions; re-route only the affected requests.

        Returns ``(placement, routing, changed)``.  The input placement
        is never mutated — edits go to a copy.  Requests whose chain
        touches a scaled service re-run the batched routing DP via
        :func:`~repro.model.routing.partial_reroute`; everything else
        keeps the solver's assignment bit-for-bit.
        """
        deltas = [a for a in actions if a.kind in ("up", "down")]
        if not deltas:
            return placement, routing, False
        new = placement.copy()
        touched: set[int] = set()
        for act in deltas:
            if act.kind == "up":
                if not new.has(act.service, act.node):
                    new.add(act.service, act.node)
                    touched.add(act.service)
            else:
                if new.has(act.service, act.node):
                    new.remove(act.service, act.node)
                    touched.add(act.service)
        if not touched:
            return placement, routing, False
        svc_ids = np.fromiter(touched, dtype=np.int64)
        hit = np.isin(instance.chain_matrix, svc_ids) & instance.chain_mask
        rows = np.nonzero(hit.any(axis=1))[0]
        new_routing = partial_reroute(instance, new, rows, routing.assignment)
        return new, new_routing, True

    def apply_pool(
        self,
        pool: InstancePool,
        actions: Sequence[ScalingAction],
        now: float = 0.0,
    ) -> tuple[int, int]:
        """Apply prewarm/evict actions to the live instance pool.

        Prewarms of pairs the placement no longer provisions are
        silently skipped (the pair may have been scaled down in the same
        slot).  Returns ``(n_prewarmed, n_evicted)``.
        """
        prewarmed = evicted = 0
        for act in actions:
            if act.kind == "prewarm":
                if pool.is_provisioned(act.service, act.node):
                    pool.prewarm(act.service, act.node, now)
                    prewarmed += 1
            elif act.kind == "evict":
                before = pool.evictions
                pool.evict(act.service, act.node)
                evicted += pool.evictions - before
        return prewarmed, evicted


class Autoscaler:
    """The slot-boundary feedback-control loop (monitor → policy → scaler).

    ``reactive=False`` (default) is *assist* mode: the solver's per-slot
    placement is the starting point and the autoscaler layers replica
    deltas and warm-pool management on top.  ``reactive=True`` is the
    pure-reactive baseline: after the first slot the solver's placement
    is ignored and the replica set evolves only through feedback —
    combine with :class:`StaticProvisioner` to avoid per-slot solves
    entirely.  With ``config.enabled=False`` every hook is a no-op and
    the simulation is bit-identical to running without an autoscaler.
    """

    def __init__(
        self,
        config: AutoscaleConfig = AutoscaleConfig(),
        reactive: bool = False,
    ):
        self.config = config
        self.reactive = bool(reactive)
        self.monitor = UtilizationMonitor(alpha=config.ema_alpha)
        self.policy = ScalingPolicy(config)
        self.scaler = Scaler()
        self.stats = AutoscaleStats()
        self.last_actions: tuple[ScalingAction, ...] = ()
        self._placement: Optional[Placement] = None

    @property
    def enabled(self) -> bool:
        """Whether the control loop is active (see the bit-identity contract)."""
        return self.config.enabled

    @property
    def name(self) -> str:
        """Display label (``AS-reactive`` / ``AS-assist``)."""
        return "AS-reactive" if self.reactive else "AS-assist"

    def adjust(
        self,
        slot: int,
        instance: ProblemInstance,
        placement: Placement,
        routing: Routing,
    ) -> tuple[Placement, Routing, tuple[ScalingAction, ...]]:
        """Slot-boundary hook: apply this slot's scaling decisions.

        Called after the solver commits and before the pool updates.
        Returns the (possibly adjusted) placement and routing plus the
        pool actions (prewarm/evict) to apply once the pool has been
        re-synced to the returned placement.  A disabled autoscaler
        returns its inputs untouched.
        """
        if not self.enabled:
            return placement, routing, ()
        tracer = current_tracer()
        shape = (instance.n_services, instance.n_servers)
        if self.reactive and self._placement is not None and (
            self._placement.n_services,
            self._placement.n_servers,
        ) == shape:
            placement = self._placement.copy()
            routing = greedy_routing(instance, placement)
        signals = self.monitor.signals()
        actions, held, suppressed = self.policy.decide(
            slot, signals, instance, placement
        )
        placement, routing, changed = self.scaler.apply_scaling(
            instance, placement, routing, actions
        )
        warm_actions = self.policy.warm_plan(signals, placement)
        self._placement = placement.copy() if self.reactive else None
        all_actions = tuple(actions) + tuple(warm_actions)
        self.last_actions = all_actions
        n_up = sum(1 for a in actions if a.kind == "up")
        n_down = sum(1 for a in actions if a.kind == "down")
        self.stats.slots += 1
        self.stats.scale_ups += n_up
        self.stats.scale_downs += n_down
        self.stats.holds += held
        self.stats.suppressed_cooldown += suppressed
        if changed:
            self.stats.reroutes += 1
        tracer.inc("runtime.autoscale.slots")
        tracer.inc("runtime.autoscale.scale_up", n_up)
        tracer.inc("runtime.autoscale.scale_down", n_down)
        tracer.inc("runtime.autoscale.hold", held)
        tracer.inc("runtime.autoscale.cooldown_suppressed", suppressed)
        tracer.inc("runtime.autoscale.reroutes", int(changed))
        return placement, routing, all_actions

    def apply_pool(
        self,
        pool: InstancePool,
        actions: Sequence[ScalingAction],
        now: float = 0.0,
    ) -> None:
        """Apply the prewarm/evict subset of ``actions`` to ``pool``."""
        if not self.enabled:
            return
        prewarmed, evicted = self.scaler.apply_pool(pool, actions, now)
        self.stats.prewarms += prewarmed
        self.stats.evictions += evicted
        tracer = current_tracer()
        tracer.inc("runtime.autoscale.prewarm", prewarmed)
        tracer.inc("runtime.autoscale.evict", evicted)

    def observe(
        self,
        instance: ProblemInstance,
        routing: Routing,
        cluster,
        requests: np.ndarray,
        queueing: np.ndarray,
        slot_seconds: float,
    ) -> None:
        """Post-replay hook: fold the completed slot into the monitor."""
        if not self.enabled:
            return
        self.monitor.observe(
            instance, routing, cluster, requests, queueing, slot_seconds
        )


class StaticProvisioner:
    """One-shot provisioner: solve (or cover) once, then hold the placement.

    The pure-reactive baseline's solver stand-in: the first slot either
    delegates to ``inner`` (when given) or builds a minimal coverage
    placement (one storage-feasible, demand-weighted replica per
    requested service — i.e. *no* pre-provisioning beyond existence);
    every later slot re-emits the held placement with fresh greedy
    routing for that slot's requests.  All capacity adaptation is left
    to the :class:`Autoscaler` riding on top.
    """

    def __init__(self, inner=None):
        self.inner = inner
        self.name = (
            f"Static-{getattr(inner, 'name', type(inner).__name__)}"
            if inner is not None
            else "Static"
        )
        self._placement: Optional[Placement] = None

    def reset(self) -> None:
        """Forget the held placement (the next solve re-bootstraps)."""
        self._placement = None

    def _coverage(self, instance: ProblemInstance) -> Placement:
        """Minimal bootstrap: one feasible replica per requested service."""
        x = Placement.empty(instance)
        used = np.zeros(instance.n_servers)
        inv = instance.inv_rate
        for svc in (int(s) for s in instance.requested_services):
            phi = float(instance.service_storage[svc])
            demand_nodes = np.nonzero(instance.demand_counts[svc] > 0)[0]
            if demand_nodes.size == 0:
                continue
            weights = instance.demand_counts[svc, demand_nodes].astype(np.float64)
            score = (
                weights[:, None]
                * inv[np.ix_(demand_nodes, np.arange(instance.n_servers))]
            ).sum(axis=0)
            for k in (int(v) for v in np.argsort(score, kind="stable")):
                if used[k] + phi <= instance.server_storage[k] + 1e-9:
                    x.add(svc, k)
                    used[k] += phi
                    break
        return x

    def solve(self, instance: ProblemInstance):
        """Return the held placement scored against ``instance``.

        First call bootstraps the placement (inner solver or coverage);
        the held matrix is re-validated against the instance shape so a
        scenario change re-bootstraps instead of mis-indexing.
        """
        from repro.baselines.base import finalize

        sw = Stopwatch()
        sw.start()
        shape = (instance.n_services, instance.n_servers)
        if self._placement is None or (
            self._placement.n_services,
            self._placement.n_servers,
        ) != shape:
            if self.inner is not None:
                self._placement = self.inner.solve(instance).placement.copy()
            else:
                self._placement = self._coverage(instance)
        placement = self._placement.copy()
        routing = greedy_routing(instance, placement)
        return finalize(instance, placement, routing, sw.stop())
