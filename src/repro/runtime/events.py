"""Minimal deterministic discrete-event engine.

A binary-heap event queue with a monotonically increasing sequence
number for stable FIFO ordering among simultaneous events — essential
for reproducible simulations.  Callbacks receive the
:class:`EventQueue`, so handlers can schedule follow-up events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

EventCallback = Callable[["EventQueue"], None]


@dataclass(order=True)
class Event:
    """One scheduled event; ordering is (time, seq)."""

    time: float
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event cancelled; the queue skips it on pop."""
        self.cancelled = True


class EventQueue:
    """Deterministic event loop."""

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Events still scheduled (including cancelled ones not yet popped)."""
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, delay: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self._now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time} < now={self._now})"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event``, compacting the heap when cancellations pile up.

        Equivalent to ``event.cancel()`` plus bookkeeping: when more than
        half of a non-trivial heap is dead weight (e.g. per-request
        timeout guards that were cancelled on completion), the heap is
        rebuilt without the cancelled entries so long simulations don't
        accumulate garbage.
        """
        if event.cancelled:
            return
        event.cancel()
        self._cancelled += 1
        if self._cancelled > 64 and self._cancelled * 2 > len(self._heap):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled = max(0, self._cancelled - 1)
                continue
            self._now = event.time
            event.callback(self)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget is exhausted."""
        executed = 0
        while self._heap:
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                self._cancelled = max(0, self._cancelled - 1)
                continue
            if until is not None and nxt.time > until:
                self._now = until
                return
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"event budget exhausted after {max_events} events at t={self._now}"
                )
