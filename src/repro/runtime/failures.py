"""Failure injection: edge-node outages for robustness experiments.

Edge deployments lose nodes — power, backhaul, maintenance.  The paper's
framework re-provisions every slot on the *observed* system state, which
makes outage handling implicit: a down node simply disappears from the
usable state.  This module makes that testable:

* :class:`OutageSchedule` — per-slot down-node sets from independent
  two-state Markov (up/down) processes per node, seeded;
* :class:`DegradationPolicy` — the documented, overridable ε values a
  down node's storage and compute are degraded to;
* :func:`degrade_instance` — rewrite a :class:`ProblemInstance` so down
  nodes cannot host instances (storage → ε below any footprint) or do
  useful work (compute → ε), while their radios keep relaying (links
  survive, so the network stays connected and latency finite); users
  homed at a down station re-attach to the nearest live one.

Request-level faults *within* a slot (link degradation, instance
crashes) live in :mod:`repro.runtime.resilience`, layered on top of
this module's slot-level outages.

The online simulator accepts an ``OutageSchedule`` and applies the
degradation before each slot's solve, so any solver's resilience —
including :class:`repro.core.online.OnlineSoCL`'s warm-start — can be
measured (``benchmarks/bench_online.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.model.instance import ProblemInstance
from repro.network.topology import EdgeNetwork, EdgeServer
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability
from repro.workload.requests import UserRequest


@dataclass(frozen=True)
class DegradationPolicy:
    """How a down node is degraded out of the solvable state.

    ``down_storage`` — storage assigned to a failed node: strictly below
    any real service footprint so the capacity constraint (Eq. 6)
    forbids placement there.  ``down_compute`` — compute assigned to a
    failed node: any processing there is absurdly slow, so routing never
    selects a surviving stale instance.  Both must be positive (zero
    would divide by zero in the latency model) and small enough that the
    semantics above hold for the scenario's service footprints; the
    defaults match every paper scenario in this repository.
    """

    down_storage: float = 1e-6
    down_compute: float = 1e-3

    def __post_init__(self) -> None:
        check_positive("down_storage", self.down_storage)
        check_positive("down_compute", self.down_compute)


class OutageSchedule:
    """Independent per-node up/down Markov chains over time slots."""

    def __init__(
        self,
        n_nodes: int,
        fail_prob: float = 0.05,
        repair_prob: float = 0.5,
        seed: SeedLike = None,
        protect: Sequence[int] = (),
        degradation: DegradationPolicy = DegradationPolicy(),
    ):
        check_positive("n_nodes", n_nodes)
        check_probability("fail_prob", fail_prob)
        check_probability("repair_prob", repair_prob)
        self.n_nodes = int(n_nodes)
        self.fail_prob = float(fail_prob)
        self.repair_prob = float(repair_prob)
        self.protect = frozenset(int(p) for p in protect)
        self.degradation = degradation
        self._rng = as_generator(seed)
        self._down = np.zeros(self.n_nodes, dtype=bool)

    @property
    def down_nodes(self) -> frozenset[int]:
        """Indices of nodes currently down, as a frozenset."""
        return frozenset(int(v) for v in np.nonzero(self._down)[0])

    def step(self) -> frozenset[int]:
        """Advance one slot; returns the set of down nodes."""
        roll = self._rng.random(self.n_nodes)
        fail = (~self._down) & (roll < self.fail_prob)
        repair = self._down & (roll < self.repair_prob)
        self._down = (self._down | fail) & ~repair
        # never take the whole network down, and honor protected nodes
        for p in self.protect:
            self._down[p] = False
        if self._down.all():
            survivor = int(self._rng.integers(0, self.n_nodes))
            self._down[survivor] = False
        return self.down_nodes

    def availability(self, n_slots: int) -> float:
        """Simulated long-run fraction of node-slots up (resets state)."""
        check_positive("n_slots", n_slots)
        up = 0
        for _ in range(n_slots):
            down = self.step()
            up += self.n_nodes - len(down)
        return up / (n_slots * self.n_nodes)


def degrade_instance(
    instance: ProblemInstance,
    down_nodes: frozenset[int] | set[int],
    policy: DegradationPolicy = DegradationPolicy(),
) -> ProblemInstance:
    """Clone ``instance`` with ``down_nodes`` unable to host or compute.

    Links survive (radios keep relaying) so the topology stays connected;
    requests homed at a down node re-attach to the nearest live node by
    virtual-link transfer time.  ``policy`` sets the degraded storage and
    compute values (see :class:`DegradationPolicy`).
    """
    down = {int(v) for v in down_nodes}
    for v in down:
        if not (0 <= v < instance.n_servers):
            raise IndexError(f"down node {v} outside network of size {instance.n_servers}")
    if not down:
        return instance
    if len(down) >= instance.n_servers:
        raise ValueError("cannot take every edge node down")

    network = instance.network
    servers = [
        EdgeServer(
            index=s.index,
            compute=policy.down_compute if s.index in down else s.compute,
            storage=policy.down_storage if s.index in down else s.storage,
            position=s.position,
            name=s.name,
        )
        for s in network.servers
    ]
    degraded_net = EdgeNetwork(servers, network.links)

    inv = network.paths.inv_rate
    up_nodes = np.array(
        [k for k in range(network.n) if k not in down], dtype=np.int64
    )

    def rehome(home: int) -> int:
        if home not in down:
            return home
        return int(up_nodes[np.argmin(inv[home, up_nodes])])

    requests = [
        req
        if req.home not in down
        else UserRequest(
            index=req.index,
            home=rehome(req.home),
            chain=req.chain,
            data_in=req.data_in,
            data_out=req.data_out,
            edge_data=req.edge_data,
        )
        for req in instance.requests
    ]
    return ProblemInstance(degraded_net, instance.app, requests, instance.config)
