"""Simulated edge cluster: nodes, queues, transfers, request execution.

Models the paper's testbed (§V.C): edge nodes with bounded compute
serve microservice invocations from FIFO per-core queues; data moves
between nodes over the substrate network's virtual links; a master
dispatches each user request along its routed chain

    upload → [process m_1] → transfer → [process m_2] → … → return

and records the end-to-end completion time.  Cold starts from
:mod:`repro.runtime.serverless` add to processing where applicable;
requests whose service has no edge instance detour to the cloud with
the instance's configured WAN transfer cost.

The cluster is deterministic given its inputs — queueing delays emerge
purely from request overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.model.instance import ProblemInstance
from repro.model.placement import Placement, Routing
from repro.runtime.events import EventQueue
from repro.runtime.serverless import InstancePool, ServerlessConfig
from repro.utils.validation import check_positive


@dataclass
class RequestOutcome:
    """Completion record of one dispatched request."""

    request: int
    start: float
    finish: float = np.nan
    queueing: float = 0.0
    cold_start: float = 0.0

    @property
    def latency(self) -> float:
        return self.finish - self.start

    @property
    def done(self) -> bool:
        return not np.isnan(self.finish)


class _Node:
    """FIFO multi-core compute server."""

    def __init__(self, index: int, compute: float, cores: int):
        self.index = index
        self.compute = compute
        self.cores = cores
        # next free time per core (earliest first)
        self.core_free = [0.0] * cores
        self.busy_time = 0.0

    def enqueue(self, now: float, work_gflop: float) -> tuple[float, float]:
        """Admit ``work_gflop`` at ``now``; returns (finish_time, queue_wait)."""
        service_time = work_gflop / self.compute
        core = int(np.argmin(self.core_free))
        start = max(now, self.core_free[core])
        finish = start + service_time
        self.core_free[core] = finish
        self.busy_time += service_time
        return finish, start - now


class SimulatedCluster:
    """Executable model of the edge cluster for one provisioning epoch."""

    def __init__(
        self,
        instance: ProblemInstance,
        placement: Placement,
        routing: Routing,
        cores_per_node: int = 2,
        serverless: Optional[ServerlessConfig] = None,
        pool: Optional[InstancePool] = None,
    ):
        check_positive("cores_per_node", cores_per_node)
        self.instance = instance
        self.placement = placement
        self.routing = routing
        self.queue = EventQueue()
        self.nodes = [
            _Node(k, float(c), cores_per_node)
            for k, c in enumerate(instance.network.compute)
        ]
        self.pool = pool if pool is not None else InstancePool(
            placement, serverless or ServerlessConfig()
        )
        self.outcomes: list[RequestOutcome] = []

    # ------------------------------------------------------------------
    def submit(self, h: int, at: float) -> RequestOutcome:
        """Schedule request ``h`` to arrive at absolute time ``at``."""
        if not (0 <= h < self.instance.n_requests):
            raise IndexError(
                f"request {h} outside instance of size {self.instance.n_requests}"
            )
        if at < 0:
            raise ValueError(f"arrival time must be non-negative, got {at}")
        outcome = RequestOutcome(request=h, start=at)
        self.outcomes.append(outcome)
        self.queue.schedule_at(at, lambda q, h=h, o=outcome: self._begin(h, o))
        return outcome

    def _begin(self, h: int, outcome: RequestOutcome) -> None:
        inst = self.instance
        req = inst.requests[h]
        nodes = self.routing.nodes_for(h)
        inv = inst.inv_rate
        # upload leg
        delay = req.data_in * inv[req.home, nodes[0]]
        self.queue.schedule(
            delay, lambda q, pos=0: self._process(h, outcome, nodes, pos)
        )

    def _process(
        self, h: int, outcome: RequestOutcome, nodes: np.ndarray, pos: int
    ) -> None:
        inst = self.instance
        req = inst.requests[h]
        svc = req.chain[pos]
        node = int(nodes[pos])
        now = self.queue.now

        if node == inst.cloud:
            # cloud executes without queueing at its large capacity
            finish = now + inst.service_compute[svc] / inst.config.cloud_compute
            wait = 0.0
            penalty = 0.0
        else:
            penalty = (
                self.pool.invoke(svc, node, now)
                if self.placement.has(svc, node)
                else 0.0
            )
            finish, wait = self.nodes[node].enqueue(
                now + penalty, float(inst.service_compute[svc])
            )
        outcome.queueing += wait
        outcome.cold_start += penalty

        delay_done = finish - now
        if pos + 1 < req.length:
            transfer = req.edge_data[pos] * inst.inv_rate[node, int(nodes[pos + 1])]
            self.queue.schedule(
                delay_done + transfer,
                lambda q, p=pos + 1: self._process(h, outcome, nodes, p),
            )
        else:
            ret = req.data_out * inst.inv_rate[node, req.home]
            self.queue.schedule(
                delay_done + ret, lambda q: self._finish(outcome)
            )

    def _finish(self, outcome: RequestOutcome) -> None:
        outcome.finish = self.queue.now

    # ------------------------------------------------------------------
    def run(
        self,
        arrivals: Optional[Sequence[tuple[int, float]]] = None,
        until: Optional[float] = None,
    ) -> list[RequestOutcome]:
        """Dispatch ``arrivals`` ((request, time) pairs; defaults to all
        requests at t=0) and run to completion."""
        if arrivals is None:
            arrivals = [(h, 0.0) for h in range(self.instance.n_requests)]
        for h, at in arrivals:
            self.submit(h, at)
        self.queue.run(until=until, max_events=10_000_000)
        return self.outcomes

    def latencies(self) -> np.ndarray:
        """Latencies of completed requests."""
        return np.array([o.latency for o in self.outcomes if o.done])

    def utilization(self, horizon: float) -> np.ndarray:
        """Per-node busy fraction over ``horizon`` seconds."""
        check_positive("horizon", horizon)
        return np.array(
            [n.busy_time / (n.cores * horizon) for n in self.nodes]
        )
