"""Simulated edge cluster: nodes, queues, transfers, request execution.

Models the paper's testbed (§V.C): edge nodes with bounded compute
serve microservice invocations from FIFO per-core queues; data moves
between nodes over the substrate network's virtual links; a master
dispatches each user request along its routed chain

    upload → [process m_1] → transfer → [process m_2] → … → return

and records the end-to-end completion time.  Cold starts from
:mod:`repro.runtime.serverless` add to processing where applicable;
requests whose service has no edge instance detour to the cloud with
the instance's configured WAN transfer cost.

The optional resilience layer (:mod:`repro.runtime.resilience`) adds
request-level faults and the policies that absorb them: degraded links
multiply transfer times, crashed instances reject invocations, and a
:class:`~repro.runtime.resilience.ResiliencePolicy` turns those hard
failures into bounded retries with exponential backoff, hedged
re-routing to the next-best surviving instance (via the incremental
:class:`repro.model.engine.BatchRouter`), per-request timeouts derived
from the Eq.-4 deadline, and admission-time shedding.  Without faults
and policy the cluster is bit-identical to the pre-resilience code
path.

The cluster is deterministic given its inputs — queueing delays emerge
purely from request overlap (and the injected fault realization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.model.engine import BatchRouter
from repro.model.instance import ProblemInstance
from repro.model.placement import Placement, Routing
from repro.runtime.events import Event, EventQueue
from repro.runtime.replay import ReplayResult, replay_slot
from repro.runtime.resilience import ResiliencePolicy, SlotFaults
from repro.runtime.serverless import InstancePool, ServerlessConfig
from repro.utils.validation import check_positive


@dataclass
class RequestOutcome:
    """Completion record of one dispatched request.

    ``status`` is ``"ok"`` for requests that ran (or are still running)
    normally, ``"timeout"`` when the resilience policy's per-request
    timeout fired first, ``"shed"`` for requests dropped at admission,
    and ``"failed"`` for hard failures (a crashed instance with no
    policy to absorb it).  ``retries``/``hedges`` count the policy
    actions spent on the request.
    """

    request: int
    start: float
    finish: float = np.nan
    queueing: float = 0.0
    cold_start: float = 0.0
    retries: int = 0
    hedges: int = 0
    status: str = "ok"

    @property
    def latency(self) -> float:
        """End-to-end completion time (NaN while incomplete)."""
        return self.finish - self.start

    @property
    def done(self) -> bool:
        """True once the request completed end to end."""
        return not np.isnan(self.finish)


class _Node:
    """FIFO multi-core compute server."""

    def __init__(self, index: int, compute: float, cores: int):
        self.index = index
        self.compute = compute
        self.cores = cores
        # next free time per core (earliest first)
        self.core_free = [0.0] * cores
        self.busy_time = 0.0

    def enqueue(self, now: float, work_gflop: float) -> tuple[float, float]:
        """Admit ``work_gflop`` at ``now``; returns (finish_time, queue_wait)."""
        service_time = work_gflop / self.compute
        core = int(np.argmin(self.core_free))
        start = max(now, self.core_free[core])
        finish = start + service_time
        self.core_free[core] = finish
        self.busy_time += service_time
        return finish, start - now


class SimulatedCluster:
    """Executable model of the edge cluster for one provisioning epoch."""

    def __init__(
        self,
        instance: ProblemInstance,
        placement: Placement,
        routing: Routing,
        cores_per_node: int = 2,
        serverless: Optional[ServerlessConfig] = None,
        pool: Optional[InstancePool] = None,
        faults: Optional[SlotFaults] = None,
        policy: Optional[ResiliencePolicy] = None,
        fast_replay: bool = True,
        region_map=None,
        shard_executor: str = "serial",
        shard_context=None,
        warm_start=None,
    ):
        check_positive("cores_per_node", cores_per_node)
        self.instance = instance
        self.placement = placement
        self.routing = routing
        self.faults = faults
        self.policy = policy
        #: Allow the vectorized fault-free fast path (see
        #: :mod:`repro.runtime.replay`).  Cleared automatically after a
        #: declined replay so the event loop is not re-attempted against
        #: the same slot.
        self.fast_replay = fast_replay
        self.queue = EventQueue()
        self.nodes = [
            _Node(k, float(c), cores_per_node)
            for k, c in enumerate(instance.network.compute)
        ]
        self.pool = pool if pool is not None else InstancePool(
            placement, serverless or ServerlessConfig()
        )
        #: Optional region partition (:class:`repro.runtime.shard.RegionMap`).
        #: When set, :meth:`replay` runs the region-sharded engine —
        #: bit-identical to the flat replay — and per-region runtime
        #: state is exposed through :attr:`shards`.
        self.region_map = region_map
        self.shard_executor = shard_executor
        #: Optional persistent shared-memory executor state
        #: (:class:`repro.runtime.shard.ShmReplayContext`) — owned by
        #: the caller (usually :class:`~repro.runtime.simulator.
        #: OnlineSimulator`), shared across per-slot clusters.
        self.shard_context = shard_context
        #: Optional cross-slot :class:`repro.runtime.replay.
        #: WarmStartCache`, likewise caller-owned.
        self.warm_start = warm_start
        self.shards = []
        self.last_shard_stats = None
        if region_map is not None:
            from repro.runtime.shard import partition_cluster

            self.shards = partition_cluster(self.nodes, region_map)
        self.outcomes: list[RequestOutcome] = []
        # hedging state, built lazily on the first crash that exhausts
        # its retries: a live placement copy that loses crashed
        # instances, re-routed incrementally by a BatchRouter
        self._live_placement: Optional[Placement] = None
        self._router: Optional[BatchRouter] = None
        self._hedged_routing: Optional[Routing] = None
        self._timeout_events: dict[int, Event] = {}

    # ------------------------------------------------------------------
    def submit(self, h: int, at: float) -> RequestOutcome:
        """Schedule request ``h`` to arrive at absolute time ``at``."""
        if not (0 <= h < self.instance.n_requests):
            raise IndexError(
                f"request {h} outside instance of size {self.instance.n_requests}"
            )
        if at < 0:
            raise ValueError(f"arrival time must be non-negative, got {at}")
        outcome = RequestOutcome(request=h, start=at)
        self.outcomes.append(outcome)
        self.queue.schedule_at(at, lambda q, h=h, o=outcome: self._begin(h, o))
        if self.policy is not None:
            timeout = self.policy.timeout_for(float(self.instance.deadlines[h]))
            self._timeout_events[id(outcome)] = self.queue.schedule_at(
                at + timeout, lambda q, o=outcome: self._timeout(o)
            )
        return outcome

    def shed(self, h: int, at: float = 0.0) -> RequestOutcome:
        """Record request ``h`` as shed at admission (never dispatched).

        Used by the graceful-degradation policy: the request counts as
        incomplete with ``status == "shed"`` instead of entering the
        cluster and timing out under overload.
        """
        if not (0 <= h < self.instance.n_requests):
            raise IndexError(
                f"request {h} outside instance of size {self.instance.n_requests}"
            )
        outcome = RequestOutcome(request=h, start=at, status="shed")
        self.outcomes.append(outcome)
        return outcome

    def _timeout(self, outcome: RequestOutcome) -> None:
        """Per-request timeout guard: abandon the request where it stands."""
        self._timeout_events.pop(id(outcome), None)
        if outcome.done or outcome.status != "ok":
            return
        outcome.status = "timeout"

    def _begin(self, h: int, outcome: RequestOutcome) -> None:
        if outcome.status != "ok":
            return
        inst = self.instance
        req = inst.requests[h]
        nodes = self.routing.nodes_for(h)
        inv = inst.inv_rate
        # upload leg
        delay = req.data_in * inv[req.home, nodes[0]]
        if self.faults is not None:
            delay = delay * self.faults.link_factor(req.home, int(nodes[0]))
        self.queue.schedule(
            delay, lambda q, pos=0: self._process(h, outcome, nodes, pos)
        )

    def _process(
        self,
        h: int,
        outcome: RequestOutcome,
        nodes: np.ndarray,
        pos: int,
        attempt: int = 0,
    ) -> None:
        if outcome.status != "ok":
            return
        inst = self.instance
        req = inst.requests[h]
        svc = req.chain[pos]
        node = int(nodes[pos])
        now = self.queue.now

        if node == inst.cloud:
            # cloud executes without queueing at its large capacity
            finish = now + inst.service_compute[svc] / inst.config.cloud_compute
            wait = 0.0
            penalty = 0.0
        else:
            if self.faults is not None and self.faults.crashed(svc, node, now):
                self._on_crash(h, outcome, nodes, pos, attempt, svc, node)
                return
            penalty = (
                self.pool.invoke(svc, node, now)
                if self.placement.has(svc, node)
                else 0.0
            )
            finish, wait = self.nodes[node].enqueue(
                now + penalty, float(inst.service_compute[svc])
            )
        outcome.queueing += wait
        outcome.cold_start += penalty

        delay_done = finish - now
        if pos + 1 < req.length:
            transfer = req.edge_data[pos] * inst.inv_rate[node, int(nodes[pos + 1])]
            if self.faults is not None:
                transfer = transfer * self.faults.link_factor(node, int(nodes[pos + 1]))
            self.queue.schedule(
                delay_done + transfer,
                lambda q, p=pos + 1: self._process(h, outcome, nodes, p),
            )
        else:
            ret = req.data_out * inst.inv_rate[node, req.home]
            if self.faults is not None:
                ret = ret * self.faults.link_factor(node, req.home)
            self.queue.schedule(
                delay_done + ret, lambda q: self._finish(outcome)
            )

    def _on_crash(
        self,
        h: int,
        outcome: RequestOutcome,
        nodes: np.ndarray,
        pos: int,
        attempt: int,
        svc: int,
        node: int,
    ) -> None:
        """An invocation hit a crashed instance: retry, hedge, or fail."""
        self.pool.evict(svc, node)  # the crashed container restarts cold
        policy = self.policy
        if policy is None:
            outcome.status = "failed"
            return
        if attempt < policy.max_retries:
            outcome.retries += 1
            self.queue.schedule(
                policy.backoff(attempt),
                lambda q, a=attempt + 1: self._process(h, outcome, nodes, pos, a),
            )
            return
        if not policy.hedging:
            outcome.status = "failed"
            return
        self._hedge(h, outcome, nodes, pos, svc, node)

    def _hedge(
        self,
        h: int,
        outcome: RequestOutcome,
        nodes: np.ndarray,
        pos: int,
        svc: int,
        node: int,
    ) -> None:
        """Re-route the request's remaining suffix off the crashed instance.

        The crashed ``(svc, node)`` pair is removed from a live placement
        copy and the :class:`BatchRouter` recomputes the optimal
        assignment incrementally (only the touched service re-routes);
        the request resumes at its re-routed hop after paying the
        transfer from the crashed node to the surviving one.  When the
        service has no surviving edge instance the router falls back to
        the cloud, which never crashes.
        """
        if self._router is None:
            self._live_placement = self.placement.copy()
            self._router = BatchRouter(self.instance)
        assert self._live_placement is not None
        if self._live_placement.has(svc, node):
            self._live_placement.remove(svc, node)
            self._hedged_routing = self._router.route(self._live_placement)
        elif self._hedged_routing is None:
            self._hedged_routing = self._router.route(self._live_placement)
        outcome.hedges += 1
        req = self.instance.requests[h]
        new_nodes = nodes.copy()
        row = self._hedged_routing.assignment[h]
        new_nodes[pos:] = row[pos : len(new_nodes)]
        target = int(new_nodes[pos])
        w_in = req.data_in if pos == 0 else req.edge_data[pos - 1]
        transfer = w_in * self.instance.inv_rate[node, target]
        if self.faults is not None:
            transfer = transfer * self.faults.link_factor(node, target)
        self.queue.schedule(
            transfer,
            lambda q, n=new_nodes: self._process(h, outcome, n, pos, 0),
        )

    def _finish(self, outcome: RequestOutcome) -> None:
        if outcome.status != "ok":
            return
        outcome.finish = self.queue.now
        evt = self._timeout_events.pop(id(outcome), None)
        if evt is not None:
            self.queue.cancel(evt)

    # ------------------------------------------------------------------
    def _replay_eligible(self) -> bool:
        """Whether the vectorized fault-free fast path may run."""
        return (
            self.fast_replay
            and self.faults is None
            and self.policy is None
            and not self.outcomes
            and self.queue.processed == 0
            and self.queue.pending == 0
        )

    def replay(
        self,
        at: Sequence[float],
        requests: Optional[Sequence[int]] = None,
    ) -> Optional[ReplayResult]:
        """Replay arrivals in batch through the vectorized fast path.

        ``at`` gives arrival times; ``requests`` the matching request
        indices (defaults to ``0..len(at)-1``, i.e. one arrival per
        instance request in order).  Returns a columnar
        :class:`~repro.runtime.replay.ReplayResult` whose values are
        bit-identical to the event loop's outcomes, or ``None`` when the
        fast path declines — a fault injector or resilience policy is
        active, the cluster already ran, or the slot needs event-driven
        tie-breaking — in which case no state was touched and
        :meth:`run` must be used.  A declined replay clears
        :attr:`fast_replay` so subsequent :meth:`run` calls go straight
        to the event loop.  Inputs are validated up front with the same
        errors as :meth:`submit`.
        """
        if not self._replay_eligible():
            return None
        at_arr = np.asarray(at, dtype=np.float64)
        if requests is None:
            req_arr = np.arange(at_arr.size, dtype=np.int64)
        else:
            req_arr = np.asarray(requests, dtype=np.int64)
        if req_arr.shape != at_arr.shape or at_arr.ndim != 1:
            raise ValueError(
                f"requests/at must be equal-length 1-D, got shapes "
                f"{req_arr.shape} and {at_arr.shape}"
            )
        n = self.instance.n_requests
        bad = (req_arr < 0) | (req_arr >= n)
        if bad.any():
            h = int(req_arr[int(np.argmax(bad))])
            raise IndexError(f"request {h} outside instance of size {n}")
        neg = at_arr < 0
        if neg.any():
            raise ValueError(
                "arrival time must be non-negative, got "
                f"{at_arr[int(np.argmax(neg))]}"
            )
        if self.region_map is not None:
            from repro.runtime.shard import replay_slot_sharded

            sharded = replay_slot_sharded(
                self.instance,
                self.placement,
                self.routing,
                self.pool,
                self.nodes,
                req_arr,
                at_arr,
                self.region_map,
                executor=self.shard_executor,
                shard_context=self.shard_context,
                warm_start=self.warm_start,
            )
            if sharded is None:
                self.fast_replay = False
                return None
            self.last_shard_stats = sharded.stats
            return sharded.result
        result = replay_slot(
            self.instance,
            self.placement,
            self.routing,
            self.pool,
            self.nodes,
            req_arr,
            at_arr,
            warm_start=self.warm_start,
        )
        if result is None:
            self.fast_replay = False
        return result

    def _materialize(self, result: ReplayResult) -> None:
        """Expand a columnar replay result into ``RequestOutcome`` objects."""
        req = result.request.tolist()
        start = result.start.tolist()
        finish = result.finish
        queueing = result.queueing
        cold = result.cold_start
        append = self.outcomes.append
        for i in range(len(req)):
            append(
                RequestOutcome(
                    request=req[i],
                    start=start[i],
                    finish=finish[i],
                    queueing=queueing[i],
                    cold_start=cold[i],
                )
            )

    def run(
        self,
        arrivals: Optional[Sequence[tuple[int, float]]] = None,
        until: Optional[float] = None,
    ) -> list[RequestOutcome]:
        """Dispatch ``arrivals`` ((request, time) pairs; defaults to all
        requests at t=0) and run to completion.

        Fault-free runs take the vectorized fast path of
        :mod:`repro.runtime.replay` when possible (bit-identical
        outcomes, no event heap); everything else — faults, resilience
        policies, ``until`` horizons, incremental use — replays through
        the discrete-event loop.
        """
        if arrivals is None:
            arrivals = [(h, 0.0) for h in range(self.instance.n_requests)]
        else:
            arrivals = list(arrivals)
        if until is None and arrivals and self._replay_eligible():
            try:
                arr = np.asarray(arrivals, dtype=np.float64)
            except (TypeError, ValueError):
                arr = None
            if arr is not None and arr.ndim == 2 and arr.shape[1] == 2:
                req_f = arr[:, 0]
                at_f = arr[:, 1]
                if (
                    np.all(req_f == np.floor(req_f))
                    and np.all(req_f >= 0)
                    and np.all(req_f < self.instance.n_requests)
                    and np.all(at_f >= 0)
                ):
                    result = replay_slot(
                        self.instance,
                        self.placement,
                        self.routing,
                        self.pool,
                        self.nodes,
                        req_f.astype(np.int64),
                        at_f,
                    )
                    if result is not None:
                        self._materialize(result)
                        return self.outcomes
                    self.fast_replay = False
        for h, at in arrivals:
            self.submit(h, at)
        self.queue.run(until=until, max_events=10_000_000)
        return self.outcomes

    def latencies(self) -> np.ndarray:
        """Latencies of completed requests."""
        return np.array([o.latency for o in self.outcomes if o.done])

    def utilization(self, horizon: float) -> np.ndarray:
        """Per-node busy fraction over ``horizon`` seconds."""
        check_positive("horizon", horizon)
        return np.array(
            [n.busy_time / (n.cores * horizon) for n in self.nodes]
        )
