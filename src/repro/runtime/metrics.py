"""Latency aggregation and reporting (paper Figs. 9-10 metrics).

The testbed experiments report per-interval average delay, per-user
median latency, and delay stability via maximum latency.  The
:class:`LatencyRecorder` accumulates completion records per slot and
produces those aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


def summarize_latencies(latencies: Sequence[float]) -> dict[str, float]:
    """Mean / median / p95 / p99 / max summary of a latency sample."""
    arr = np.asarray(latencies, dtype=np.float64)
    if arr.size == 0:
        return {
            "count": 0.0,
            "mean": 0.0,
            "median": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }
    return {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


@dataclass
class LatencyRecorder:
    """Per-slot latency accumulator."""

    slots: list[np.ndarray] = field(default_factory=list)

    def record_slot(self, latencies: Sequence[float]) -> None:
        """Append one slot's per-request latencies (seconds)."""
        self.slots.append(np.asarray(latencies, dtype=np.float64))

    @property
    def n_slots(self) -> int:
        """Number of slots recorded so far."""
        return len(self.slots)

    def slot_means(self) -> np.ndarray:
        """Average delay per slot (Fig. 10's trace series)."""
        return np.array(
            [s.mean() if s.size else 0.0 for s in self.slots]
        )

    def slot_maxima(self) -> np.ndarray:
        """Worst per-request delay in each slot (0.0 for empty slots)."""
        return np.array([s.max() if s.size else 0.0 for s in self.slots])

    def all_latencies(self) -> np.ndarray:
        """Every recorded latency, concatenated across slots."""
        if not self.slots:
            return np.empty(0)
        return np.concatenate(self.slots)

    def overall(self) -> dict[str, float]:
        """Whole-trace summary (Fig. 10's avg and max delay numbers)."""
        return summarize_latencies(self.all_latencies())
