"""Latency aggregation and reporting (paper Figs. 9-10 metrics).

The testbed experiments report per-interval average delay, per-user
median latency, and delay stability via maximum latency.  The
:class:`LatencyRecorder` accumulates completion records per slot and
produces those aggregates.

**Memory model.**  The recorder used to keep every per-request latency
(O(total-requests) memory — at 1M users that is the largest allocation
in the whole online run).  It now streams every sample into a
fixed-memory :class:`repro.obs.hist.StreamingHistogram` and, in the
default ``"auto"`` mode, keeps the exact per-slot arrays only until
``spill_at`` total samples; past that the arrays are dropped and the
summary switches to histogram-backed quantiles (documented 1% relative
error), keeping memory flat.  Per-slot scalars (count, mean, max) are
computed at record time and always retained, so the Fig. 10 trace
series are exact at any scale.  ``mode="exact"`` opts back into the old
keep-everything behavior for golden-result parity on small runs;
``mode="hist"`` never keeps arrays at all.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.obs.hist import DEFAULT_ERROR, StreamingHistogram

#: ``"auto"`` recorders drop exact arrays past this many total samples.
DEFAULT_SPILL = 65536

_MODES = ("auto", "exact", "hist")


def summarize_latencies(latencies: Sequence[float]) -> dict[str, float]:
    """Mean / median / p95 / p99 / max summary of a latency sample."""
    arr = np.asarray(latencies, dtype=np.float64)
    if arr.size == 0:
        return {
            "count": 0.0,
            "mean": 0.0,
            "median": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }
    return {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


class LatencyRecorder:
    """Per-slot latency accumulator with bounded memory.

    Parameters
    ----------
    mode:
        ``"auto"`` (default) keeps exact per-slot arrays until
        ``spill_at`` total samples, then spills to histogram-only;
        ``"exact"`` never spills (opt-in legacy behavior);
        ``"hist"`` never keeps arrays.
    spill_at:
        Total-sample threshold for the ``"auto"`` spill.
    error:
        Relative-error bound of the backing histogram's quantiles.
    """

    def __init__(
        self,
        mode: str = "auto",
        spill_at: int = DEFAULT_SPILL,
        error: float = DEFAULT_ERROR,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.spill_at = int(spill_at)
        #: Exact per-slot arrays; emptied once the recorder spills.
        self.slots: list[np.ndarray] = []
        #: Streaming histogram fed with every sample (all modes).
        self.hist = StreamingHistogram(error=error)
        self._counts: list[int] = []
        self._means: list[float] = []
        self._maxima: list[float] = []
        self._spilled = mode == "hist"

    def record_slot(self, latencies: Sequence[float]) -> None:
        """Append one slot's per-request latencies (seconds)."""
        arr = np.asarray(latencies, dtype=np.float64)
        self._counts.append(int(arr.size))
        self._means.append(float(arr.mean()) if arr.size else 0.0)
        self._maxima.append(float(arr.max()) if arr.size else 0.0)
        self.hist.record_many(arr)
        if not self._spilled:
            self.slots.append(arr)
            if self.mode == "auto" and self.hist.count > self.spill_at:
                self.slots.clear()
                self._spilled = True

    @property
    def exact(self) -> bool:
        """Whether the exact per-sample arrays are still retained."""
        return not self._spilled

    @property
    def n_slots(self) -> int:
        """Number of slots recorded so far."""
        return len(self._counts)

    @property
    def total_count(self) -> int:
        """Total samples recorded across all slots (exact at any scale)."""
        return self.hist.count

    def slot_counts(self) -> np.ndarray:
        """Completed-request count per slot (exact at any scale)."""
        return np.asarray(self._counts, dtype=np.int64)

    def slot_means(self) -> np.ndarray:
        """Average delay per slot (Fig. 10's trace series; exact)."""
        return np.asarray(self._means, dtype=np.float64)

    def slot_maxima(self) -> np.ndarray:
        """Worst per-request delay in each slot (0.0 for empty slots)."""
        return np.asarray(self._maxima, dtype=np.float64)

    def all_latencies(self) -> np.ndarray:
        """Every recorded latency, concatenated across slots.

        Only available while :attr:`exact` — past the ``"auto"`` spill
        point the samples no longer exist; use :meth:`overall` (or
        :attr:`hist` directly) for histogram-backed summaries.
        """
        if self._spilled:
            raise RuntimeError(
                f"exact latencies were dropped after {self.hist.count} samples "
                f"(mode={self.mode!r}, spill_at={self.spill_at}); use "
                f"overall() / hist for streaming summaries or mode='exact'"
            )
        if not self.slots:
            return np.empty(0)
        return np.concatenate(self.slots)

    def overall(self) -> dict[str, float]:
        """Whole-trace summary (Fig. 10's avg and max delay numbers).

        Exact (``np.percentile``) while the arrays are retained;
        histogram-backed within the documented relative-error bound
        after the spill (count, mean and max stay exact — they are
        tracked outside the buckets).
        """
        if not self._spilled:
            return summarize_latencies(self.all_latencies())
        h = self.hist
        if h.count == 0:
            return summarize_latencies([])
        return {
            "count": float(h.count),
            "mean": float(h.mean),
            "median": float(h.quantile(0.5)),
            "p95": float(h.quantile(0.95)),
            "p99": float(h.quantile(0.99)),
            "max": float(h.max),
        }
