"""Time-slotted online simulation driver (paper Figs. 9-10, §V.C).

Reproduces the 4-hour trace experiment: users move among edge nodes
(random waypoint), issue requests each ~5-minute slot with stochastic
service dependencies, and the provisioning algorithm re-runs every slot
on the *observed* state — SoCL's "one-shot decision-making" with no
knowledge of future arrivals.  Each slot's requests are then replayed
through the :class:`repro.runtime.cluster.SimulatedCluster`; the warm
instance pool carries across slots, so re-provisioning churn shows up as
cold starts exactly as it would on Kubernetes.

Two optional failure layers compose here: slot-level node outages
(:mod:`repro.runtime.failures`, the ``outages`` argument) degrade nodes
out of the solvable state before each provision, while request-level
faults (:mod:`repro.runtime.resilience`, the ``faults`` argument)
degrade links and crash instances *within* a slot, after the solver has
committed.  A :class:`~repro.runtime.resilience.ResiliencePolicy`
(``resilience`` argument) governs how the replayed cluster absorbs
those faults — retries, hedged re-routing, timeouts, and admission-time
shedding.  With both arguments left at ``None`` the simulation is
bit-identical to the fault-free code path.

A third optional layer, the reactive autoscaler
(:mod:`repro.runtime.autoscale`, the ``autoscaler`` constructor
argument), hooks the slot boundary: after the solver commits it applies
feedback-driven replica deltas and warm-pool actions, and after replay
it folds the slot's utilization/queueing telemetry into its signals.
Like the failure layers it is bit-identical when absent or disabled.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.microservices.application import Application
from repro.model.instance import ProblemConfig, ProblemInstance
from repro.network.topology import EdgeNetwork
from repro.obs import NULL_TRACER, Tracer, current_tracer
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import LatencyRecorder
from repro.runtime.pipeline import (
    PIPELINE_MODES,
    AsyncSlotReplay,
    resolve_pipeline,
)
from repro.runtime.resilience import FaultInjector, ResiliencePolicy, shed_indices
from repro.runtime.serverless import InstancePool, ServerlessConfig
from repro.utils.rng import SeedLike, as_generator, spawn
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive
from repro.workload.mobility import RandomWaypointMobility
from repro.workload.users import WorkloadSpec, generate_requests

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SlotRecord:
    """Per-slot outcome of the online simulation."""

    slot: int
    n_requests: int
    objective: float
    cost: float
    mean_latency: float
    max_latency: float
    cold_starts: int
    solver_runtime: float
    churn: float
    n_down_nodes: int = 0
    n_retries: int = 0
    n_hedges: int = 0
    n_shed: int = 0
    n_timeouts: int = 0
    n_failed: int = 0
    #: Provisioned (service, node) instances during the slot — the
    #: capacity the cost metric ``instance-seconds`` integrates.
    n_provisioned: int = 0
    #: Warm instances at the slot start (after autoscaler prewarms).
    n_warm: int = 0
    #: Autoscaler actions taken at this slot's boundary (all zero when
    #: no autoscaler is attached — purely additive reporting).
    n_scale_ups: int = 0
    n_scale_downs: int = 0
    n_prewarms: int = 0
    n_pool_evictions: int = 0
    #: Per-slot phase breakdown (wall seconds).  ``t_generate`` covers
    #: mobility/churn, window generation and the problem build;
    #: ``t_solve`` is the provisioning solve *for this slot* even when
    #: the pipelined executor ran it speculatively during the previous
    #: slot's replay; ``t_replay`` is the execute stage's own wall time;
    #: ``t_observe`` the sequential suffix (recorder/autoscaler fold-in).
    t_generate: float = 0.0
    t_solve: float = 0.0
    t_replay: float = 0.0
    t_observe: float = 0.0
    #: Replay seconds hidden behind the next slot's prefix (0.0 in
    #: serial mode and for the final slot, which has nothing to overlap
    #: with).  ``t_replay - t_overlap`` is the slot's exposed replay.
    t_overlap: float = 0.0


@dataclass
class OnlineTraceResult:
    """Full trace outcome for one algorithm."""

    solver_name: str
    slots: list[SlotRecord]
    recorder: LatencyRecorder

    @property
    def mean_delay(self) -> float:
        """Trace-average per-request delay (Fig. 10 headline)."""
        return float(self.recorder.overall()["mean"])

    @property
    def max_delay(self) -> float:
        """Worst per-request delay observed across the trace."""
        return float(self.recorder.overall()["max"])

    @property
    def p99_delay(self) -> float:
        """99th-percentile per-request delay (resilience experiment metric)."""
        return float(self.recorder.overall()["p99"])

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted requests that completed end to end.

        Requests lost to crashes, timeouts, or shedding count against
        this; without faults it is 1.0 by construction.
        """
        total = sum(r.n_requests for r in self.slots)
        done = int(self.recorder.total_count)
        return done / total if total else 1.0

    def slot_means(self) -> np.ndarray:
        """Average delay per slot (Fig. 10's trace series)."""
        return self.recorder.slot_means()

    def instance_seconds(self, slot_seconds: float = 300.0) -> float:
        """Provisioned capacity integrated over the trace (cost metric).

        Each slot contributes ``n_provisioned × slot_seconds`` — the
        serverless bill for keeping those instances allocated, whether
        or not they served traffic.  The autoscale sweep compares this
        against completion rate and p99 latency (docs/AUTOSCALING.md).
        """
        return float(
            sum(r.n_provisioned for r in self.slots) * slot_seconds
        )


@dataclass
class _SlotState:
    """Everything one slot carries between its pipeline stages.

    The slot loop is split into *prefix* (window generation + solve),
    *mid* (autoscale/pool/fault commit + dispatch inputs), *execute*
    (replay) and *suffix* (fold-in); pipelined mode runs stages of
    adjacent slots interleaved, so their shared state lives in this
    explicit carrier instead of loop locals.
    """

    slot: int
    span: object = None
    churn: float = 0.0
    down: frozenset = frozenset()
    result: object = None
    instance: object = None
    placement: object = None
    routing: object = None
    cluster: object = None
    offsets: Optional[np.ndarray] = None
    shed_set: frozenset = frozenset()
    cold_before: int = 0
    n_provisioned: int = 0
    n_warm: int = 0
    n_scale_ups: int = 0
    n_scale_downs: int = 0
    n_prewarms: int = 0
    n_pool_evictions: int = 0
    slot_faults: object = None
    replay_cols: object = None
    outcomes: list = field(default_factory=list)
    #: In-flight background replay (pipelined mode only).
    handle: Optional[AsyncSlotReplay] = None
    #: Private tracer the replay thread ran under (merged at join).
    replay_tracer: object = None
    dispatched_at: float = 0.0
    t_generate: float = 0.0
    t_solve: float = 0.0
    t_replay: float = 0.0
    t_observe: float = 0.0
    t_overlap: float = 0.0
    t_stall: float = 0.0


@dataclass
class _RunContext:
    """Mutable cross-slot state of one :meth:`OnlineSimulator.run`."""

    solver: object
    recorder: LatencyRecorder
    tracer: object
    faults: Optional[FaultInjector]
    resilience: Optional[ResiliencePolicy]
    resilient: bool
    pipelined: bool
    prev_homes: np.ndarray
    records: list = field(default_factory=list)
    pool: Optional[InstancePool] = None


def _shift_span(span, delta: float) -> None:
    """Rebase a span subtree's starts by ``delta`` seconds (in place).

    Spans record ``start`` relative to their owning tracer's epoch; a
    replay thread's private tracer has its own epoch, so its spans are
    shifted onto the main tracer's timeline before grafting.
    """
    span.start += delta
    for child in span.children:
        _shift_span(child, delta)


class OnlineSimulator:
    """Drives one algorithm through a mobile, time-varying workload."""

    def __init__(
        self,
        network: EdgeNetwork,
        app: Application,
        problem_config: ProblemConfig,
        workload: WorkloadSpec,
        slot_seconds: float = 300.0,
        move_prob: float = 0.3,
        serverless: ServerlessConfig = ServerlessConfig(),
        seed: SeedLike = None,
        fast_replay: bool = True,
        shards: int = 1,
        shard_executor: str = "serial",
        warm_start: bool = False,
        exact_latencies: bool = False,
        autoscaler=None,
        pipeline: str = "auto",
    ):
        check_positive("slot_seconds", slot_seconds)
        self.network = network
        self.app = app
        self.problem_config = problem_config
        self.workload = workload
        self.slot_seconds = float(slot_seconds)
        self.serverless = serverless
        check_positive("shards", shards)
        #: With ``shards > 1`` every fault-free slot replays through the
        #: region-sharded engine (:mod:`repro.runtime.shard`), nodes
        #: partitioned geographically by k-means over their positions.
        #: Results stay bit-identical to the flat replay; only the
        #: memory/scaling profile changes.  ``shard_executor`` picks
        #: ``"serial"`` (in-process), ``"process"`` (pickled slices to
        #: pipe workers), ``"shm"`` (persistent workers over a
        #: shared-memory arena — the simulator owns one
        #: :class:`repro.runtime.shard.ShmReplayContext` reused across
        #: every slot), or ``"auto"`` (serial below a users-per-shard
        #: threshold, shm above; see
        #: :func:`repro.runtime.shard.resolve_shard_executor`).
        self.shards = int(shards)
        if shard_executor not in ("serial", "process", "shm", "auto"):
            raise ValueError(
                f"unknown shard executor: {shard_executor!r}"
            )
        self.shard_executor = shard_executor
        self.region_map = None
        if self.shards > 1:
            from repro.runtime.shard import RegionMap

            self.region_map = RegionMap.from_positions(
                network.positions, self.shards
            )
        #: Lazily-built persistent shm executor state; created on first
        #: use, freed by :meth:`close` (or on garbage collection via
        #: the pool/arena finalizers).
        self.shard_context = None
        #: With ``warm_start=True`` the replay engines seed each slot's
        #: fixpoint from the previous slot's converged per-node
        #: congestion (:class:`repro.runtime.replay.WarmStartCache`).
        #: Committed results stay bit-identical — the cache only
        #: changes round counts, measures its own benefit, and
        #: suppresses itself on workloads where seeding does not pay.
        self.warm_start_cache = None
        if warm_start:
            from repro.runtime.replay import WarmStartCache

            self.warm_start_cache = WarmStartCache(
                len(network.servers)
            )
        #: Use the vectorized fault-free replay
        #: (:mod:`repro.runtime.replay`) for slots without faults or a
        #: resilience policy; results are bit-identical to the event
        #: loop, so this only changes wall-clock.  Set ``False`` to
        #: force the event loop everywhere (benchmark baseline).
        self.fast_replay = fast_replay
        #: ``True`` keeps every per-request latency in memory
        #: (``mode="exact"`` on the recorder) for golden-result parity
        #: on small runs; the default recorder spills to a streaming
        #: histogram past ~65k samples so trace memory stays flat at
        #: 1M users (see :class:`repro.runtime.metrics.LatencyRecorder`).
        self.exact_latencies = bool(exact_latencies)
        #: Optional :class:`repro.runtime.autoscale.Autoscaler` — the
        #: reactive feedback-control loop over the serverless pools.
        #: Hooked at the slot boundary: ``adjust`` after the solver
        #: commits (replica deltas + warm-pool actions), ``observe``
        #: after replay (utilization/queueing signals).  ``None`` (or a
        #: disabled autoscaler) leaves every slot bit-identical to the
        #: static pipeline (docs/AUTOSCALING.md).
        self.autoscaler = autoscaler
        #: Pipelined slot execution (:mod:`repro.runtime.pipeline`):
        #: ``"on"`` dispatches each slot's replay to a background thread
        #: and runs the next slot's window generation + solve while it
        #: is in flight; ``"off"`` keeps the fully serial loop;
        #: ``"auto"`` (default) pipelines only when a persistent
        #: out-of-process shard executor would carry the replay —
        #: overlapping with an in-process replay just adds GIL
        #: contention.  Either way the trace is bit-identical to the
        #: serial loop (docs/RUNTIME.md, "Pipelined slot execution").
        if pipeline not in PIPELINE_MODES:
            raise ValueError(
                f"pipeline must be one of {PIPELINE_MODES}, got {pipeline!r}"
            )
        self.pipeline = pipeline
        rng = as_generator(seed)
        self._mobility_rng, self._workload_rng, self._arrival_rng = spawn(rng, 3)
        self.mobility = RandomWaypointMobility(
            network,
            workload.n_users,
            move_prob=move_prob,
            seed=self._mobility_rng,
        )

    def close(self) -> None:
        """Release the persistent shm executor state (workers, arena).

        Idempotent; a no-op unless a shm slot actually ran.  The
        simulator is also a context manager for scoped use.
        """
        if self.shard_context is not None:
            self.shard_context.close()
            self.shard_context = None

    def __enter__(self) -> "OnlineSimulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _record_flight_snapshot(
        self, flight, slot: int, record, latencies, replay_cols, cluster
    ) -> None:
        """Capture one per-slot runtime snapshot into ``flight``.

        Fields beyond the recorder's automatic RSS: request counts,
        replay/fixpoint rounds, shm arena utilization + worker-pool
        state (when the shm executor is live), and warm-start cache
        telemetry (when enabled).  Values are numeric or ``None`` per
        the ``snapshot`` record schema.
        """
        fields: dict = {
            "requests": float(record.n_requests),
            "completed": float(latencies.size),
            "cold_starts": float(record.cold_starts),
            "replay_rounds": (
                float(replay_cols.rounds) if replay_cols is not None else None
            ),
            "t_generate": float(record.t_generate),
            "t_solve": float(record.t_solve),
            "t_replay": float(record.t_replay),
            "t_observe": float(record.t_observe),
            "t_overlap": float(record.t_overlap),
        }
        shard_stats = cluster.last_shard_stats
        if shard_stats is not None:
            fields["shard_rounds"] = float(shard_stats.rounds)
            fields["shard_exchange_rounds"] = float(
                shard_stats.exchange_rounds
            )
        ctx = self.shard_context
        if ctx is not None and ctx.arena is not None:
            fields["arena_used_bytes"] = float(ctx.arena.used)
            fields["arena_capacity_bytes"] = float(ctx.arena.nbytes)
            fields["arena_segments"] = float(ctx.segments_created)
            fields["pool_spawns"] = float(ctx.pool_spawns)
            fields["pool_workers"] = (
                float(ctx.pool.n_workers)
                if ctx.pool is not None and not ctx.pool.closed
                else 0.0
            )
        asc = self.autoscaler
        if asc is not None and asc.enabled:
            fields["autoscale_provisioned"] = float(record.n_provisioned)
            fields["autoscale_warm"] = float(record.n_warm)
            fields["autoscale_scale_ups"] = float(asc.stats.scale_ups)
            fields["autoscale_scale_downs"] = float(asc.stats.scale_downs)
            fields["autoscale_prewarms"] = float(asc.stats.prewarms)
            fields["autoscale_evictions"] = float(asc.stats.evictions)
        cache = self.warm_start_cache
        if cache is not None:
            slots_seen = slot + 1
            fields["warm_slots"] = float(cache.warm_slots)
            fields["warm_hit_rate"] = cache.warm_slots / slots_seen
            fields["warm_declined"] = float(cache.declined)
            fields["warm_ema_rounds"] = float(cache.ema_rounds)
            fields["warm_suppressed"] = float(cache.suppressed)
        flight.snapshot(slot, **fields)

    def run(
        self,
        solver,
        n_slots: int,
        volumes: Optional[Sequence[int]] = None,
        outages=None,
        faults: Optional[FaultInjector] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> OnlineTraceResult:
        """Simulate ``n_slots`` slots with ``solver`` re-provisioning.

        ``volumes`` optionally sets the number of active requests per
        slot (from a :class:`repro.workload.trace.TemporalTrace`); it is
        capped at the user population.  ``outages`` is an optional
        :class:`repro.runtime.failures.OutageSchedule`: each slot its
        down nodes are degraded out of the solvable state before the
        solver runs (failure-injection experiments).

        ``faults`` is an optional
        :class:`repro.runtime.resilience.FaultInjector`: after the
        solver commits a placement, per-slot link degradations and
        instance crashes are drawn (slot-addressable, independent of
        the workload RNG streams) and applied during cluster replay.
        Solvers exposing ``note_failures`` (e.g.
        :class:`repro.core.online.OnlineSoCL`) are told which instances
        crashed so the next slot's warm start can route around them.
        ``resilience`` is an optional
        :class:`repro.runtime.resilience.ResiliencePolicy` governing
        retries, hedging, timeouts, and admission-time shedding; without
        it, a crashed invocation is a hard failure.  Both default to
        ``None``, which leaves every placement, routing, and objective
        bit-identical to the fault-free simulation.

        When the simulator was constructed with an enabled
        ``autoscaler`` (:mod:`repro.runtime.autoscale`), each slot
        additionally runs the feedback loop: replica deltas and
        warm-pool actions after the solver commits, telemetry
        observation after replay (docs/AUTOSCALING.md).  Absent or
        disabled, the same bit-identity contract applies.
        """
        check_positive("n_slots", n_slots)
        tracer = current_tracer()
        n_regions = (
            self.region_map.n_regions if self.region_map is not None else 1
        )
        ctx = _RunContext(
            solver=solver,
            recorder=LatencyRecorder(
                mode="exact" if self.exact_latencies else "auto"
            ),
            tracer=tracer,
            faults=faults,
            resilience=resilience,
            resilient=faults is not None or resilience is not None,
            pipelined=resolve_pipeline(
                self.pipeline,
                n_regions,
                self.shard_executor,
                self.workload.n_users,
            ),
            prev_homes=self.mobility.homes,
        )

        pending: Optional[_SlotState] = None
        try:
            for slot in range(n_slots):
                with tracer.span("slot", index=slot) as slot_span:
                    state = self._slot_prefix(ctx, slot, volumes, outages)
                    state.span = slot_span
                    if pending is not None:
                        # the previous slot's replay overlapped this
                        # slot's prefix; fold it in before committing
                        # this slot (its autoscaler adjust consumes the
                        # signals observed here)
                        done, pending = pending, None
                        self._join_pending(ctx, done)
                    self._slot_mid(ctx, state)
                    if ctx.pipelined:
                        state.replay_tracer = (
                            Tracer(f"replay{slot}")
                            if tracer.enabled
                            else NULL_TRACER
                        )
                        state.dispatched_at = time.perf_counter()
                        state.handle = AsyncSlotReplay(
                            lambda s=state: self._slot_execute(s),
                            tracer=state.replay_tracer,
                        )
                        pending = state
                    else:
                        t0 = time.perf_counter()
                        state.replay_cols, state.outcomes = (
                            self._slot_execute(state)
                        )
                        state.t_replay = time.perf_counter() - t0
                        self._slot_suffix(ctx, state)
            if pending is not None:
                done, pending = pending, None
                self._join_pending(ctx, done)
        finally:
            if pending is not None:
                # An exception is propagating with a replay still in
                # flight: wait it out (the thread owns the worker pool's
                # in-flight batch, so abandoning it would strand the
                # workers mid-batch) and swallow its own outcome so the
                # primary error surfaces.
                try:
                    pending.handle.join()
                except BaseException:
                    logger.exception(
                        "in-flight replay for slot %d failed during unwind",
                        pending.slot,
                    )
        return OnlineTraceResult(
            solver_name=getattr(solver, "name", type(solver).__name__),
            slots=ctx.records,
            recorder=ctx.recorder,
        )

    def _slot_prefix(
        self, ctx: _RunContext, slot: int, volumes, outages
    ) -> _SlotState:
        """Speculative stage: window generation plus the slot's solve.

        Reads only the solver's own state, the workload/mobility RNG
        streams and the outage schedule — never the instance pool, the
        autoscaler, or replay output — so pipelined mode can run it
        while the previous slot's replay is still in flight (the
        speculative-solve contract; see
        :class:`repro.core.online.OnlineSoCL`).
        """
        tracer = ctx.tracer
        state = _SlotState(slot=slot)
        t0 = time.perf_counter()
        homes = self.mobility.step()
        state.churn = float(np.mean(homes != ctx.prev_homes))
        ctx.prev_homes = homes

        n_active = self.workload.n_users
        if volumes is not None:
            n_active = int(
                min(self.workload.n_users, volumes[slot % len(volumes)])
            )
            n_active = max(1, n_active)
        active = self._arrival_rng.choice(
            self.workload.n_users, size=n_active, replace=False
        )

        spec = WorkloadSpec(
            n_users=n_active,
            hotspot_fraction=self.workload.hotspot_fraction,
            hotspot_weight=self.workload.hotspot_weight,
            length_bias=self.workload.length_bias,
            min_chain=self.workload.min_chain,
            max_chain=self.workload.max_chain,
            data_in_range=self.workload.data_in_range,
            data_out_range=self.workload.data_out_range,
            edge_noise=self.workload.edge_noise,
            data_scale=self.workload.data_scale,
        )
        requests = generate_requests(
            self.network,
            self.app,
            spec,
            rng=self._workload_rng,
            homes=homes[active],
        )
        instance = ProblemInstance(
            self.network, self.app, requests, self.problem_config
        )
        if outages is not None:
            from repro.runtime.failures import degrade_instance

            state.down = outages.step()
            instance = degrade_instance(instance, state.down)
        state.instance = instance
        state.t_generate = time.perf_counter() - t0

        sw = Stopwatch()
        with sw.measure(), tracer.span("provision"):
            state.result = ctx.solver.solve(instance)
        state.t_solve = sw.elapsed
        state.placement = state.result.placement
        state.routing = state.result.routing
        return state

    def _slot_mid(self, ctx: _RunContext, state: _SlotState) -> None:
        """Sequential commit stage: everything between solve and replay.

        Runs strictly after the previous slot's suffix in both modes —
        the autoscaler adjusts from its freshly observed signals and the
        fault draw sees the post-adjust placement — and ends with the
        slot ready to execute (cluster built, arrival offsets drawn,
        shedding applied).
        """
        tracer = ctx.tracer
        slot, instance = state.slot, state.instance
        placement, routing = state.placement, state.routing
        autoscaling = (
            self.autoscaler is not None and self.autoscaler.enabled
        )
        pool_actions: tuple = ()
        if autoscaling:
            with tracer.span("autoscale"):
                placement, routing, pool_actions = (
                    self.autoscaler.adjust(
                        slot, instance, placement, routing
                    )
                )

        if ctx.pool is None:
            ctx.pool = InstancePool(placement, self.serverless)
        else:
            ctx.pool.update_placement(placement)
        pool = ctx.pool
        if autoscaling:
            stats = self.autoscaler.stats
            state.n_scale_ups = sum(
                1 for a in pool_actions if a.kind == "up"
            )
            state.n_scale_downs = sum(
                1 for a in pool_actions if a.kind == "down"
            )
            pw_before, ev_before = stats.prewarms, stats.evictions
            # slot-local clock: 0.0 is the slot start, so the
            # prewarmed instances stay warm for the whole slot
            self.autoscaler.apply_pool(pool, pool_actions, now=0.0)
            state.n_prewarms = stats.prewarms - pw_before
            state.n_pool_evictions = stats.evictions - ev_before
        state.cold_before = pool.cold_starts
        state.n_provisioned = pool.n_provisioned
        state.n_warm = pool.warm_count(0.0)

        if ctx.faults is not None:
            state.slot_faults = ctx.faults.for_slot(
                slot, placement, self.slot_seconds
            )
            if state.slot_faults.crashes:
                note = getattr(ctx.solver, "note_failures", None)
                if note is not None:
                    note(sorted(state.slot_faults.crashes))

        if (
            self.region_map is not None
            and self.shard_context is None
            and self.shard_executor in ("shm", "auto")
        ):
            from repro.runtime.shard import ShmReplayContext

            # persistent arena + workers, reused every slot
            # (cheap until the first slot actually resolves to
            # the shm engine)
            self.shard_context = ShmReplayContext()
        state.cluster = SimulatedCluster(
            instance,
            placement,
            routing,
            pool=pool,
            faults=state.slot_faults,
            policy=ctx.resilience,
            fast_replay=self.fast_replay,
            region_map=self.region_map,
            shard_executor=self.shard_executor,
            shard_context=self.shard_context,
            warm_start=self.warm_start_cache,
        )
        # arrivals spread uniformly across the slot
        state.offsets = self._arrival_rng.uniform(
            0.0, self.slot_seconds, size=instance.n_requests
        )
        if ctx.resilience is not None and ctx.resilience.shedding:
            capacity = (
                sum(nd.compute * nd.cores for nd in state.cluster.nodes)
                * self.slot_seconds
            )
            state.shed_set = frozenset(
                int(i)
                for i in shed_indices(instance, ctx.resilience, capacity)
            )
            for h in sorted(state.shed_set):
                state.cluster.shed(h, float(state.offsets[h]))
        state.placement, state.routing = placement, routing
    def _slot_execute(self, state: _SlotState) -> tuple:
        """Execute stage: replay the slot's requests through the cluster.

        Reads the *ambient* tracer so the ``replay`` span lands on the
        main tracer when run inline (serial mode) and on the replay
        thread's private tracer when run via :class:`AsyncSlotReplay`
        (pipelined mode — the span stack is not thread-safe, so the
        thread must never touch the main tracer).
        """
        tracer = current_tracer()
        replay_cols = None
        outcomes: list = []
        with tracer.span("replay"):
            if not state.shed_set:
                # Columnar fast path: declines (None) under
                # faults/resilience or event-order ties, in
                # which case the event loop below replays the
                # identical slot.
                replay_cols = state.cluster.replay(state.offsets)
            if replay_cols is None:
                outcomes = state.cluster.run(
                    arrivals=[
                        (h, float(state.offsets[h]))
                        for h in range(state.instance.n_requests)
                        if h not in state.shed_set
                    ]
                )
        return replay_cols, outcomes

    def _join_pending(self, ctx: _RunContext, state: _SlotState) -> None:
        """Join an in-flight replay and run its deferred suffix."""
        join_start = time.perf_counter()
        state.replay_cols, state.outcomes = state.handle.join()
        state.t_stall = time.perf_counter() - join_start
        state.t_replay = state.handle.elapsed
        # replay seconds already hidden when the join began, capped at
        # the replay's own wall time (the prefix may outlast it)
        state.t_overlap = min(
            max(join_start - state.dispatched_at, 0.0), state.t_replay
        )
        self._merge_replay_tracer(ctx.tracer, state)
        self._slot_suffix(ctx, state)

    def _merge_replay_tracer(self, tracer, state: _SlotState) -> None:
        """Fold the replay thread's private tracer into the main one.

        Counters and histograms merge additively — the same totals the
        serial mode accumulates in place, so counter digests stay
        identical.  The thread's span forest (the ``replay`` span plus
        any worker payloads grafted under it) is rebased from the
        private tracer's epoch onto the main tracer's and appended to
        the slot's span — exactly where serial mode nests it.
        """
        ptracer = state.replay_tracer
        if not tracer.enabled or ptracer is None or not ptracer.enabled:
            return
        tracer.metrics.merge(ptracer.metrics)
        delta = ptracer._epoch - tracer._epoch
        for root in ptracer.roots:
            _shift_span(root, delta)
            state.span.children.append(root)

    def _slot_suffix(self, ctx: _RunContext, state: _SlotState) -> None:
        """Sequential fold-in stage: recorder, observe, record, counters.

        Runs on the main thread after the slot's replay has finished —
        immediately in serial mode, at join time in pipelined mode (for
        slot *t* that is inside slot *t+1*'s prefix/mid window, which is
        why everything here keys off ``state``, not ambient loop
        variables).
        """
        tracer = ctx.tracer
        pool = ctx.pool
        slot, instance = state.slot, state.instance
        replay_cols, outcomes = state.replay_cols, state.outcomes
        t0 = time.perf_counter()
        if replay_cols is not None:
            latencies = replay_cols.latency
        else:
            latencies = np.array([o.latency for o in outcomes if o.done])
        ctx.recorder.record_slot(latencies)
        autoscaling = (
            self.autoscaler is not None and self.autoscaler.enabled
        )
        if autoscaling:
            if replay_cols is not None:
                obs_req, obs_queue = (
                    replay_cols.request,
                    replay_cols.queueing,
                )
            else:
                obs_req = np.array(
                    [o.request for o in outcomes if o.done],
                    dtype=np.int64,
                )
                obs_queue = np.array(
                    [o.queueing for o in outcomes if o.done]
                )
            self.autoscaler.observe(
                instance,
                state.routing,
                state.cluster,
                obs_req,
                obs_queue,
                self.slot_seconds,
            )
        n_retries = n_hedges = n_shed = n_timeouts = n_failed = 0
        if ctx.resilient:
            for o in outcomes:
                n_retries += o.retries
                n_hedges += o.hedges
                if o.status == "shed":
                    n_shed += 1
                elif o.status == "timeout":
                    n_timeouts += 1
                elif o.status == "failed":
                    n_failed += 1
        state.t_observe = time.perf_counter() - t0
        record = SlotRecord(
            slot=slot,
            n_requests=instance.n_requests,
            objective=state.result.report.objective,
            cost=state.result.report.cost,
            mean_latency=float(latencies.mean()) if latencies.size else 0.0,
            max_latency=float(latencies.max()) if latencies.size else 0.0,
            cold_starts=pool.cold_starts - state.cold_before,
            solver_runtime=state.t_solve,
            churn=state.churn,
            n_down_nodes=len(state.down),
            n_retries=n_retries,
            n_hedges=n_hedges,
            n_shed=n_shed,
            n_timeouts=n_timeouts,
            n_failed=n_failed,
            n_provisioned=state.n_provisioned,
            n_warm=state.n_warm,
            n_scale_ups=state.n_scale_ups,
            n_scale_downs=state.n_scale_downs,
            n_prewarms=state.n_prewarms,
            n_pool_evictions=state.n_pool_evictions,
            t_generate=state.t_generate,
            t_solve=state.t_solve,
            t_replay=state.t_replay,
            t_observe=state.t_observe,
            t_overlap=state.t_overlap,
        )
        ctx.records.append(record)
        if tracer.enabled:
            slot_span = state.span
            slot_span.set_attr(
                n_requests=record.n_requests,
                completed=int(latencies.size),
                cold_starts=record.cold_starts,
                churn=round(record.churn, 4),
                n_down_nodes=record.n_down_nodes,
                t_solve_ms=round(state.t_solve * 1e3, 3),
                t_replay_ms=round(state.t_replay * 1e3, 3),
                t_overlap_ms=round(state.t_overlap * 1e3, 3),
            )
            tracer.inc("runtime.slots")
            tracer.inc("runtime.requests_total", record.n_requests)
            tracer.inc("runtime.requests_completed", int(latencies.size))
            tracer.inc(
                "runtime.requests_dropped",
                record.n_requests - int(latencies.size),
            )
            tracer.inc("runtime.cold_starts", record.cold_starts)
            tracer.inc("runtime.node_down_slots", int(bool(state.down)))
            # fixed-memory streaming histograms: per-request
            # completion latency / queueing delay and per-slot
            # fixpoint rounds (docs/OBSERVABILITY.md)
            tracer.observe_many(
                "runtime.latency.completion", latencies
            )
            if replay_cols is not None:
                tracer.observe_many(
                    "runtime.latency.queueing", replay_cols.queueing
                )
                tracer.observe(
                    "runtime.replay.rounds", replay_cols.rounds
                )
            if replay_cols is not None:
                tracer.inc("runtime.replay_fast_slots")
                tracer.inc("runtime.replay_rounds", replay_cols.rounds)
                shard_stats = state.cluster.last_shard_stats
                if shard_stats is not None:
                    tracer.inc("runtime.shard.slots")
                    tracer.inc(
                        "runtime.shard.rounds", shard_stats.rounds
                    )
                    tracer.inc(
                        "runtime.shard.exchange_rounds",
                        shard_stats.exchange_rounds,
                    )
                    tracer.inc(
                        "runtime.shard.boundary_invocations",
                        shard_stats.boundary_invocations,
                    )
                    tracer.inc(
                        "runtime.shard.local_invocations",
                        shard_stats.local_invocations,
                    )
                    tracer.inc(
                        "runtime.shard.ready_values_exchanged",
                        shard_stats.ready_values_exchanged,
                    )
                    tracer.inc(
                        "runtime.shard.start_values_exchanged",
                        shard_stats.start_values_exchanged,
                    )
                    if shard_stats.executor == "shm":
                        tracer.inc("runtime.shard.shm_slots")
                        tracer.inc(
                            "runtime.shard.shm_bytes",
                            shard_stats.shm_bytes,
                        )
                        tracer.inc(
                            "runtime.shard.shm_pool_reuses",
                            int(shard_stats.pool_reused),
                        )
                    if shard_stats.warm_started:
                        tracer.inc(
                            "runtime.shard.warm_start_slots"
                        )
                        tracer.inc(
                            "runtime.shard.warm_start_seeded_nodes",
                            shard_stats.warm_seeded_nodes,
                        )
                        tracer.inc(
                            "runtime.shard."
                            "warm_start_invalidated_nodes",
                            shard_stats.warm_invalidated_nodes,
                        )
                    if shard_stats.warm_declined:
                        tracer.inc(
                            "runtime.shard.warm_start_declined"
                        )
                elif (
                    self.warm_start_cache is not None
                    and self.warm_start_cache.last_used
                ):
                    tracer.inc("runtime.warm_start_slots")
            elif not ctx.resilient:
                tracer.inc("runtime.replay_fallback_slots")
            if ctx.resilient:
                slot_span.set_attr(
                    retries=n_retries,
                    hedges=n_hedges,
                    shed=n_shed,
                    timeouts=n_timeouts,
                )
                tracer.inc("runtime.retries", n_retries)
                tracer.inc("runtime.hedges", n_hedges)
                tracer.inc("runtime.shed", n_shed)
                tracer.inc("runtime.timeouts", n_timeouts)
                tracer.inc("runtime.failed", n_failed)
                if state.slot_faults is not None:
                    tracer.inc(
                        "runtime.instance_crashes",
                        state.slot_faults.n_crashes,
                    )
                    tracer.inc(
                        "runtime.degraded_links",
                        state.slot_faults.n_degraded_links,
                    )
            if ctx.pipelined:
                # excluded from the serial-vs-pipelined counter digest
                # (these exist only to measure the pipelining itself)
                tracer.inc(
                    "runtime.pipeline.overlap_seconds", state.t_overlap
                )
                tracer.inc(
                    "runtime.pipeline.stall_seconds", state.t_stall
                )
                if state.t_overlap > 0.0:
                    tracer.inc("runtime.pipeline.slots_overlapped")
            flight = getattr(tracer, "flight", None)
            if flight is not None:
                self._record_flight_snapshot(
                    flight, slot, record, latencies, replay_cols,
                    state.cluster,
                )
        logger.debug(
            "slot %d: %d requests, mean latency %.3fs, %d cold starts",
            slot,
            record.n_requests,
            record.mean_latency,
            record.cold_starts,
        )
