"""Random-waypoint user mobility (paper Fig. 10 experiment).

In the 4-hour Kubernetes trace experiment, "50 users randomly moved among
edge nodes and issued requests every 5 minutes".  The
:class:`RandomWaypointMobility` model reproduces this at two levels of
fidelity:

* **discrete** (paper-faithful) — each step, a user either stays or jumps
  to a random *neighboring* edge server with probability ``move_prob``;
* **planar** — users move toward waypoints in the plane at a sampled
  speed and are associated with the nearest base station (used by the
  stadium scenario example).

Both produce, per time slot, the home-server vector consumed by
:func:`repro.workload.users.generate_requests`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.network.topology import EdgeNetwork
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability


class RandomWaypointMobility:
    """Stateful mobility process over an edge network.

    Parameters
    ----------
    network:
        The substrate network; users attach to its servers.
    n_users:
        Number of users to track.
    move_prob:
        Per-step probability that a user relocates (discrete mode).
    mode:
        ``"discrete"`` (neighbor hops) or ``"planar"`` (waypoint motion
        with nearest-station association).
    speed_range:
        Planar mode: user speed range in km per step.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        network: EdgeNetwork,
        n_users: int,
        move_prob: float = 0.3,
        mode: str = "discrete",
        speed_range: tuple[float, float] = (0.1, 0.5),
        seed: SeedLike = None,
    ):
        check_positive("n_users", n_users)
        check_probability("move_prob", move_prob)
        if mode not in ("discrete", "planar"):
            raise ValueError(f"mode must be 'discrete' or 'planar', got {mode!r}")
        if not (0 < speed_range[0] <= speed_range[1]):
            raise ValueError(f"invalid speed_range {speed_range}")
        self.network = network
        self.n_users = int(n_users)
        self.move_prob = float(move_prob)
        self.mode = mode
        self.speed_range = speed_range
        self._rng = as_generator(seed)

        self._homes = self._rng.integers(0, network.n, size=self.n_users)
        # Per-node neighbor arrays, resolved lazily: discrete steps draw
        # one choice per moving user, and the topology is static, so
        # caching avoids an adjacency scan per user per slot without
        # touching the RNG stream.
        self._neighbor_cache: dict[int, np.ndarray] = {}
        if mode == "planar":
            positions = network.positions
            lo = positions.min(axis=0)
            hi = positions.max(axis=0)
            self._extent = (lo, hi)
            self._pos = self._rng.uniform(lo, hi, size=(self.n_users, 2))
            self._waypoints = self._rng.uniform(lo, hi, size=(self.n_users, 2))
            self._homes = self._nearest_station(self._pos)

    # ------------------------------------------------------------------
    @property
    def homes(self) -> np.ndarray:
        """Current home-server index per user (read-only copy)."""
        return self._homes.copy()

    def _nearest_station(self, pos: np.ndarray) -> np.ndarray:
        stations = self.network.positions
        d = np.linalg.norm(pos[:, None, :] - stations[None, :, :], axis=2)
        return d.argmin(axis=1)

    def step(self) -> np.ndarray:
        """Advance one time slot; returns the new home vector."""
        if self.mode == "discrete":
            moving = self._rng.random(self.n_users) < self.move_prob
            cache = self._neighbor_cache
            for u in np.nonzero(moving)[0]:
                home = int(self._homes[u])
                neighbors = cache.get(home)
                if neighbors is None:
                    neighbors = self.network.neighbors(home)
                    cache[home] = neighbors
                if neighbors.size:
                    self._homes[u] = int(self._rng.choice(neighbors))
        else:
            speed = self._rng.uniform(*self.speed_range, size=(self.n_users, 1))
            delta = self._waypoints - self._pos
            dist = np.linalg.norm(delta, axis=1, keepdims=True)
            arrived = dist[:, 0] <= speed[:, 0]
            safe = np.where(dist > 0.0, dist, 1.0)
            self._pos = self._pos + delta / safe * np.minimum(speed, dist)
            if arrived.any():
                lo, hi = self._extent
                self._waypoints[arrived] = self._rng.uniform(
                    lo, hi, size=(int(arrived.sum()), 2)
                )
            self._homes = self._nearest_station(self._pos)
        return self.homes

    def run(self, n_steps: int) -> np.ndarray:
        """Simulate ``n_steps`` slots; returns ``(n_steps, n_users)`` homes."""
        check_positive("n_steps", n_steps)
        out = np.empty((n_steps, self.n_users), dtype=np.int64)
        for t in range(n_steps):
            out[t] = self.step()
        return out

    def churn(self, before: np.ndarray, after: np.ndarray) -> float:
        """Fraction of users whose home changed between two slots."""
        before = np.asarray(before)
        after = np.asarray(after)
        if before.shape != after.shape:
            raise ValueError("home vectors must have equal shape")
        if before.size == 0:
            return 0.0
        return float(np.mean(before != after))
