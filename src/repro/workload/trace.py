"""Temporal workload traces (paper Fig. 4).

The paper's 10-hour Alibaba trace analysis shows request volumes with
"significant temporal fluctuations and recurring peaks".  This module
synthesizes such traces from three components:

* a **diurnal base rate** — a smooth daily-period profile with a morning
  and an evening peak,
* **bursts** — short random surges (flash crowds, the stadium scenario),
* **noise** — per-interval Poisson sampling around the instantaneous rate.

The resulting :class:`TemporalTrace` drives the online time-slotted
simulator and the Fig. 4 reproduction bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_positive


def diurnal_rate(
    t_hours: np.ndarray,
    base: float = 40.0,
    morning_peak: float = 9.5,
    evening_peak: float = 20.0,
    peak_width: float = 2.0,
    peak_height: float = 2.5,
) -> np.ndarray:
    """Smooth daily request-rate profile (requests per interval).

    Two Gaussian bumps over a constant base, periodic over 24 h.
    """
    t = np.asarray(t_hours, dtype=np.float64) % 24.0

    def bump(center: float) -> np.ndarray:
        # circular distance so the profile wraps at midnight
        d = np.minimum(np.abs(t - center), 24.0 - np.abs(t - center))
        return np.exp(-0.5 * (d / peak_width) ** 2)

    profile = 1.0 + peak_height * (bump(morning_peak) + bump(evening_peak))
    return base * profile


@dataclass(frozen=True)
class TemporalTrace:
    """A request-volume time series.

    Attributes
    ----------
    interval_minutes:
        Width of each aggregation interval.
    volumes:
        Requests observed per interval.
    start_hour:
        Hour-of-day of the first interval (for diurnal alignment).
    """

    interval_minutes: float
    volumes: np.ndarray
    start_hour: float = 0.0

    def __post_init__(self) -> None:
        check_positive("interval_minutes", self.interval_minutes)
        vols = np.asarray(self.volumes)
        if vols.ndim != 1 or vols.size == 0:
            raise ValueError("volumes must be a non-empty 1-D array")
        if (vols < 0).any():
            raise ValueError("volumes must be non-negative")

    @property
    def n_intervals(self) -> int:
        return int(len(self.volumes))

    @property
    def duration_hours(self) -> float:
        return self.n_intervals * self.interval_minutes / 60.0

    @property
    def hours(self) -> np.ndarray:
        """Hour-of-day timestamp of each interval start."""
        offsets = np.arange(self.n_intervals) * self.interval_minutes / 60.0
        return (self.start_hour + offsets) % 24.0

    def peak_to_mean(self) -> float:
        """Peak-to-mean ratio: the paper's burstiness indicator."""
        mean = float(np.mean(self.volumes))
        if mean == 0.0:
            return 0.0
        return float(np.max(self.volumes) / mean)

    def coefficient_of_variation(self) -> float:
        mean = float(np.mean(self.volumes))
        if mean == 0.0:
            return 0.0
        return float(np.std(self.volumes) / mean)


def generate_arrivals(
    duration_hours: float,
    interval_minutes: float = 5.0,
    seed: SeedLike = None,
    base_rate: float = 40.0,
    burst_rate_per_hour: float = 0.5,
    burst_magnitude: float = 3.0,
    burst_duration_intervals: int = 3,
    start_hour: float = 8.0,
) -> TemporalTrace:
    """Synthesize a bursty diurnal arrival trace.

    Parameters mirror the knobs needed to reproduce Fig. 4's shape:
    recurring peaks (diurnal), sharp transient surges (bursts) and
    interval-level randomness (Poisson).
    """
    check_positive("duration_hours", duration_hours)
    check_positive("interval_minutes", interval_minutes)
    check_non_negative("burst_rate_per_hour", burst_rate_per_hour)
    check_positive("burst_magnitude", burst_magnitude)
    check_positive("burst_duration_intervals", burst_duration_intervals)
    gen = as_generator(seed)

    n = int(round(duration_hours * 60.0 / interval_minutes))
    if n == 0:
        raise ValueError("trace would contain zero intervals")
    hours = start_hour + np.arange(n) * interval_minutes / 60.0
    rate = diurnal_rate(hours, base=base_rate)

    # Bursts: Poisson-many start points, each multiplying the rate for a
    # few intervals with a linearly decaying surge.
    expected_bursts = burst_rate_per_hour * duration_hours
    n_bursts = int(gen.poisson(expected_bursts))
    multiplier = np.ones(n)
    for _ in range(n_bursts):
        start = int(gen.integers(0, n))
        for j in range(burst_duration_intervals):
            if start + j >= n:
                break
            decay = 1.0 - j / burst_duration_intervals
            multiplier[start + j] = max(
                multiplier[start + j], 1.0 + (burst_magnitude - 1.0) * decay
            )

    volumes = gen.poisson(rate * multiplier).astype(np.int64)
    return TemporalTrace(
        interval_minutes=interval_minutes,
        volumes=volumes,
        start_hour=start_hour % 24.0,
    )
