"""Workload models: user requests, spatial placement, traces, mobility.

Covers the user side of the paper's system model: user requests
``u_h = {M_h, E_h}`` (chains of microservices with per-edge data flows),
their spatial association with edge servers (``U_k``), the time-varying
request-volume traces that motivate the work (Fig. 4), random-waypoint
user mobility for the 4-hour Kubernetes trace experiment (Fig. 10), and
an Alibaba-cluster-style call-graph synthesizer with the similarity
analysis of Fig. 3.
"""

from repro.workload.requests import (
    RequestBatch,
    prefetch_batches,
    UserRequest,
    requests_by_server,
    services_in_requests,
)
from repro.workload.users import (
    WorkloadSpec,
    generate_request_batch,
    generate_request_windows,
    generate_requests,
    place_users,
)
from repro.workload.trace import TemporalTrace, diurnal_rate, generate_arrivals
from repro.workload.mobility import RandomWaypointMobility
from repro.workload.alibaba import (
    CallGraphTrace,
    synthesize_traces,
    trace_similarity,
    similarity_matrix,
    service_similarity_profile,
)
from repro.workload.forecast import (
    EwmaForecaster,
    HoltForecaster,
    SlidingMaxForecaster,
    ForecastScore,
    evaluate_forecaster,
)
from repro.workload.behavior import (
    UserProfile,
    BehaviorModel,
    behavioral_requests,
)

__all__ = [
    "RequestBatch",
    "prefetch_batches",
    "UserRequest",
    "requests_by_server",
    "services_in_requests",
    "generate_requests",
    "generate_request_batch",
    "generate_request_windows",
    "place_users",
    "WorkloadSpec",
    "TemporalTrace",
    "diurnal_rate",
    "generate_arrivals",
    "RandomWaypointMobility",
    "CallGraphTrace",
    "synthesize_traces",
    "trace_similarity",
    "similarity_matrix",
    "service_similarity_profile",
    "EwmaForecaster",
    "HoltForecaster",
    "SlidingMaxForecaster",
    "ForecastScore",
    "evaluate_forecaster",
    "UserProfile",
    "BehaviorModel",
    "behavioral_requests",
]
