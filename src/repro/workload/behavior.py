"""User browsing-behavior and preference modeling (paper's future work).

The conclusion states: "future research will incorporate user behavior
modeling and preference integration to support context-aware resource
management."  This module provides that extension:

* :class:`UserProfile` — per-user preference weights over application
  entrypoints plus a session-depth temperament (how far down dependency
  chains the user's interactions go);
* :class:`BehaviorModel` — a first-order Markov session model: users
  enter at a preference-weighted entrypoint, then at each step either
  *deepen* (follow a dependency), *pivot* (jump to another entry
  according to a transition kernel, e.g. browse → basket → checkout) or
  *leave*;
* :func:`behavioral_requests` — drop-in replacement for
  :func:`repro.workload.users.generate_requests` that draws every user's
  chain from their profile, so demand is *correlated per user across
  time slots* — the property one-shot provisioning can exploit and the
  online warm-start mode (:mod:`repro.core.online`) benefits from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.microservices.application import Application
from repro.network.topology import EdgeNetwork
from repro.utils.rng import SeedLike, as_generator, spawn
from repro.utils.validation import check_positive, check_probability
from repro.workload.requests import UserRequest
from repro.workload.users import place_users


@dataclass(frozen=True)
class UserProfile:
    """Stable per-user preferences.

    ``entry_weights`` — unnormalized preference over application
    entrypoints; ``depth_bias`` — probability of deepening at each chain
    step; ``pivot_prob`` — probability a session pivots to another
    entrypoint instead of deepening.
    """

    user: int
    entry_weights: tuple[float, ...]
    depth_bias: float
    pivot_prob: float

    def __post_init__(self) -> None:
        if not self.entry_weights or min(self.entry_weights) < 0:
            raise ValueError("entry_weights must be non-empty and non-negative")
        if sum(self.entry_weights) <= 0:
            raise ValueError("entry_weights must have positive sum")
        check_probability("depth_bias", self.depth_bias)
        check_probability("pivot_prob", self.pivot_prob)


class BehaviorModel:
    """Markov session model over an application's dependency DAG."""

    def __init__(
        self,
        app: Application,
        n_users: int,
        seed: SeedLike = None,
        concentration: float = 1.5,
        mean_depth_bias: float = 0.7,
        mean_pivot_prob: float = 0.15,
    ):
        check_positive("n_users", n_users)
        check_positive("concentration", concentration)
        check_probability("mean_depth_bias", mean_depth_bias)
        check_probability("mean_pivot_prob", mean_pivot_prob)
        self.app = app
        self.n_users = int(n_users)
        rng = as_generator(seed)
        self._rng = rng

        n_entries = len(app.entrypoints)
        profiles = []
        for u in range(self.n_users):
            weights = tuple(
                float(w)
                for w in rng.dirichlet(np.full(n_entries, concentration))
            )
            depth = float(np.clip(rng.normal(mean_depth_bias, 0.15), 0.05, 0.95))
            pivot = float(np.clip(rng.normal(mean_pivot_prob, 0.08), 0.0, 0.6))
            profiles.append(
                UserProfile(
                    user=u, entry_weights=weights, depth_bias=depth, pivot_prob=pivot
                )
            )
        self.profiles: tuple[UserProfile, ...] = tuple(profiles)

    # ------------------------------------------------------------------
    def sample_session(
        self,
        user: int,
        rng: Optional[np.random.Generator] = None,
        max_length: Optional[int] = None,
    ) -> tuple[int, ...]:
        """One session chain for ``user`` under their profile.

        Pivots restart at a fresh entrypoint; since a request chain must
        be a simple dependency path, a pivot *ends* the recorded chain
        (the pivoted interaction is the next request).
        """
        profile = self.profiles[user]
        gen = rng if rng is not None else self._rng
        limit = max_length if max_length is not None else self.app.n_services
        weights = np.asarray(profile.entry_weights)
        weights = weights / weights.sum()
        entry = int(gen.choice(self.app.entrypoints, p=weights))
        chain = [entry]
        while len(chain) < limit:
            succs = [s for s in self.app.successors(chain[-1]) if s not in chain]
            if not succs:
                break
            roll = gen.random()
            if roll < profile.pivot_prob:
                break  # session pivots: this request ends here
            if roll < profile.pivot_prob + profile.depth_bias:
                chain.append(int(gen.choice(succs)))
            else:
                break  # user leaves
        return tuple(chain)

    def entry_distribution(self) -> np.ndarray:
        """Population-level entrypoint popularity (mean of profiles)."""
        return np.mean([p.entry_weights for p in self.profiles], axis=0)


def behavioral_requests(
    network: EdgeNetwork,
    app: Application,
    model: BehaviorModel,
    rng: SeedLike = None,
    homes: Optional[Sequence[int]] = None,
    data_in_range: tuple[float, float] = (0.5, 2.0),
    data_out_range: tuple[float, float] = (0.2, 1.0),
    data_scale: float = 1.0,
    edge_noise: float = 0.3,
) -> list[UserRequest]:
    """Generate one request per profiled user from their behavior model."""
    check_positive("data_scale", data_scale)
    check_probability("edge_noise", edge_noise)
    gen = as_generator(rng)
    if homes is None:
        homes = place_users(network, model.n_users, gen)
    homes = np.asarray(homes, dtype=np.int64)
    if homes.shape != (model.n_users,):
        raise ValueError(
            f"homes must have shape ({model.n_users},), got {homes.shape}"
        )

    requests: list[UserRequest] = []
    for u in range(model.n_users):
        chain = model.sample_session(u, rng=gen)
        edge_data = tuple(
            float(
                data_scale
                * app.service(a).data_out
                * (1.0 + gen.uniform(-edge_noise, edge_noise))
            )
            for a in chain[:-1]
        )
        requests.append(
            UserRequest(
                index=u,
                home=int(homes[u]),
                chain=chain,
                data_in=float(data_scale * gen.uniform(*data_in_range)),
                data_out=float(data_scale * gen.uniform(*data_out_range)),
                edge_data=edge_data,
            )
        )
    return requests
