"""User placement and request generation (paper §V.A workload).

Users are associated with the edge server covering their location; the
paper distributes them around base stations near the National Stadium and
samples their service chains from the eshopOnContainers dependency graph
with stochastic dependencies.  :func:`generate_requests` reproduces this:
spatially clustered home assignment (a small number of hot cells receive
most users, matching the stadium scenario) and chain sampling via
:func:`repro.microservices.chains.sample_chain`.

Data volumes follow §V.A: per-request upload/response sizes and per-edge
flows derived from each microservice's ``data_out`` with multiplicative
noise, spanning the paper's [1, 80] GB range once scaled by request rate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.microservices.application import Application
from repro.microservices.chains import chain_catalog, sample_chain
from repro.network.topology import EdgeNetwork
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability
from repro.workload.requests import RequestBatch, UserRequest


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the request generator.

    Attributes
    ----------
    n_users:
        Number of user requests ``|U|``.
    hotspot_fraction:
        Fraction of servers that act as hotspots (crowded cells near the
        stadium).  Hotspots receive ``hotspot_weight`` times the demand
        of ordinary cells.
    hotspot_weight:
        Demand multiplier of hotspot cells.
    length_bias:
        Chain-continuation probability (geometric chain lengths).
    min_chain, max_chain:
        Chain length limits.
    data_in_range, data_out_range:
        Uniform ranges (GB) for ``r_in^h`` and ``r_out^h``.
    edge_noise:
        Multiplicative jitter on per-edge data flows (±fraction).
    data_scale:
        Global multiplier applied to every data volume (upload, response
        and per-edge flows).  The experiment scenarios use it to bring
        transfer delays into the paper's regime where latency and cost
        terms of the objective are comparable (§V.A).
    """

    n_users: int
    hotspot_fraction: float = 0.25
    hotspot_weight: float = 4.0
    length_bias: float = 0.7
    min_chain: int = 2
    max_chain: int = 6
    data_in_range: tuple[float, float] = (0.5, 2.0)
    data_out_range: tuple[float, float] = (0.2, 1.0)
    edge_noise: float = 0.3
    data_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive("n_users", self.n_users)
        check_probability("hotspot_fraction", self.hotspot_fraction)
        check_positive("hotspot_weight", self.hotspot_weight)
        check_probability("length_bias", self.length_bias)
        if not (1 <= self.min_chain <= self.max_chain):
            raise ValueError(
                f"invalid chain bounds: min={self.min_chain} max={self.max_chain}"
            )
        check_probability("edge_noise", self.edge_noise)
        check_positive("data_scale", self.data_scale)


def place_users(
    network: EdgeNetwork,
    n_users: int,
    rng: SeedLike = None,
    hotspot_fraction: float = 0.25,
    hotspot_weight: float = 4.0,
) -> np.ndarray:
    """Sample home-server indices for ``n_users`` with spatial hotspots.

    A ``hotspot_fraction`` of servers is designated hot (at least one);
    hot servers are ``hotspot_weight`` times as likely to receive a user.
    Returns an ``(n_users,)`` int array of server indices.
    """
    check_positive("n_users", n_users)
    gen = as_generator(rng)
    n = network.n
    n_hot = max(1, int(round(hotspot_fraction * n)))
    hot = gen.choice(n, size=n_hot, replace=False)
    weights = np.ones(n, dtype=np.float64)
    weights[hot] = hotspot_weight
    weights /= weights.sum()
    return gen.choice(n, size=n_users, p=weights)


def generate_requests(
    network: EdgeNetwork,
    app: Application,
    spec: WorkloadSpec,
    rng: SeedLike = None,
    homes: Optional[Sequence[int]] = None,
) -> RequestBatch:
    """Generate ``spec.n_users`` user requests on ``network`` over ``app``.

    ``homes`` overrides the spatial placement (used by the mobility-driven
    online simulator, which moves users between slots but keeps their
    service chains).

    Returns a columnar :class:`~repro.workload.requests.RequestBatch`
    (a sequence of :class:`UserRequest` views, so per-request consumers
    are unaffected).  The RNG draw order is unchanged from the original
    per-object generator, keeping every seeded workload bit-identical;
    :func:`generate_request_batch` is the fully vectorized alternative
    with a different (batched) stream for trace-scale workloads.
    """
    gen = as_generator(rng)
    if homes is None:
        homes = place_users(
            network,
            spec.n_users,
            gen,
            hotspot_fraction=spec.hotspot_fraction,
            hotspot_weight=spec.hotspot_weight,
        )
    homes = np.asarray(homes, dtype=np.int64)
    if homes.shape != (spec.n_users,):
        raise ValueError(
            f"homes must have shape ({spec.n_users},), got {homes.shape}"
        )

    douts = [app.service(i).data_out for i in range(app.n_services)]
    n = spec.n_users
    chains_flat: list[int] = []
    edge_flat: list[float] = []
    offsets = np.empty(n + 1, dtype=np.int64)
    offsets[0] = 0
    data_in = np.empty(n, dtype=np.float64)
    data_out = np.empty(n, dtype=np.float64)
    for h in range(n):
        chain = sample_chain(
            app,
            gen,
            length_bias=spec.length_bias,
            min_length=spec.min_chain,
            max_length=spec.max_chain,
        )
        # Draw order matches the original per-object generator exactly:
        # per-edge noise first, then data_in, then data_out.
        for a in chain[:-1]:
            edge_flat.append(
                float(
                    spec.data_scale
                    * douts[a]
                    * (1.0 + gen.uniform(-spec.edge_noise, spec.edge_noise))
                )
            )
        chains_flat.extend(chain)
        offsets[h + 1] = len(chains_flat)
        data_in[h] = float(spec.data_scale * gen.uniform(*spec.data_in_range))
        data_out[h] = float(spec.data_scale * gen.uniform(*spec.data_out_range))
    return RequestBatch(
        index=np.arange(n, dtype=np.int64),
        homes=homes,
        chains=np.array(chains_flat, dtype=np.int64),
        chain_offsets=offsets,
        data_in=data_in,
        data_out=data_out,
        edge_data=np.array(edge_flat, dtype=np.float64),
        validate=False,
    )


def generate_request_batch(
    network: EdgeNetwork,
    app: Application,
    spec: WorkloadSpec,
    rng: SeedLike = None,
    homes: Optional[Sequence[int]] = None,
) -> RequestBatch:
    """Fully vectorized trace-scale request generation (O(1) RNG calls).

    Samples every user's chain from the exact chain distribution of
    :func:`repro.microservices.chains.sample_chain` (computed once via
    :func:`repro.microservices.chains.chain_catalog`) and draws all data
    volumes in batch.  The marginal distribution of each request matches
    :func:`generate_requests`, but the RNG *stream* differs — seeded
    workloads are not bit-compatible between the two generators.  Use
    this for 100k+-user benchmark traces where the sequential sampler's
    per-user Python cost dominates.
    """
    gen = as_generator(rng)
    if homes is None:
        homes = place_users(
            network,
            spec.n_users,
            gen,
            hotspot_fraction=spec.hotspot_fraction,
            hotspot_weight=spec.hotspot_weight,
        )
    homes = np.asarray(homes, dtype=np.int64)
    if homes.shape != (spec.n_users,):
        raise ValueError(
            f"homes must have shape ({spec.n_users},), got {homes.shape}"
        )

    catalog, probs = chain_catalog(
        app,
        length_bias=spec.length_bias,
        min_length=spec.min_chain,
        max_length=spec.max_chain,
    )
    n = spec.n_users
    pick = gen.choice(len(catalog), size=n, p=probs)
    cat_lengths = np.array([len(c) for c in catalog], dtype=np.int64)
    cat_width = int(cat_lengths.max())
    cat_mat = np.full((len(catalog), cat_width), -1, dtype=np.int64)
    for c, chain in enumerate(catalog):
        cat_mat[c, : len(chain)] = chain
    lengths = cat_lengths[pick]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    picked = cat_mat[pick]
    chains_flat = picked[picked >= 0]

    douts = np.array(
        [app.service(i).data_out for i in range(app.n_services)],
        dtype=np.float64,
    )
    is_last = np.zeros(chains_flat.size, dtype=bool)
    is_last[offsets[1:] - 1] = True
    edge_services = chains_flat[~is_last]
    noise = gen.uniform(
        -spec.edge_noise, spec.edge_noise, size=edge_services.size
    )
    edge_data = spec.data_scale * douts[edge_services] * (1.0 + noise)
    data_in = spec.data_scale * gen.uniform(
        *spec.data_in_range, size=n
    )
    data_out = spec.data_scale * gen.uniform(
        *spec.data_out_range, size=n
    )
    return RequestBatch(
        index=np.arange(n, dtype=np.int64),
        homes=homes,
        chains=chains_flat,
        chain_offsets=offsets,
        data_in=data_in,
        data_out=data_out,
        edge_data=edge_data,
        validate=False,
    )


def generate_request_windows(
    network: EdgeNetwork,
    app: Application,
    spec: WorkloadSpec,
    rng: SeedLike = None,
    window_size: int = 100_000,
    homes: Optional[Sequence[int]] = None,
    prefetch: int = 0,
):
    """Stream ``spec.n_users`` requests as bounded columnar windows.

    Yields :class:`~repro.workload.requests.RequestBatch` windows of at
    most ``window_size`` requests each (the last may be shorter), so a
    consumer that processes windows one at a time — per-shard replay,
    chunked demand aggregation — holds only ``O(window_size)`` request
    state at once regardless of ``spec.n_users``.

    Home placement happens **once** up front with the parent generator
    (hotspot cells must be consistent across the whole workload — an
    ``(n_users,)`` int array, 8 bytes/user, is the only full-size
    allocation); chain and data sampling then runs per window through
    :func:`generate_request_batch` on independent spawned child
    generators, so windows can be regenerated or distributed without
    replaying predecessors.  The union of the windows is a valid
    workload; reassemble with
    :meth:`~repro.workload.requests.RequestBatch.concat`, which
    renumbers ``index`` to the global request order.  Like
    :func:`generate_request_batch`, the stream is seed-stable but not
    bit-compatible with the sequential generator; changing
    ``window_size`` changes the drawn workload.

    ``prefetch > 0`` draws up to that many windows ahead on a background
    thread (:func:`~repro.workload.requests.prefetch_batches`), hiding
    window generation behind the consumer's per-window work.  The
    windows, their order, and every RNG draw are identical to
    ``prefetch=0`` — all sampling still runs sequentially on the one
    producer thread; memory grows by ``prefetch`` extra windows.
    """
    check_positive("window_size", window_size)

    def _windows():
        gen = as_generator(rng)
        nonlocal homes
        if homes is None:
            homes = place_users(
                network,
                spec.n_users,
                gen,
                hotspot_fraction=spec.hotspot_fraction,
                hotspot_weight=spec.hotspot_weight,
            )
        homes = np.asarray(homes, dtype=np.int64)
        if homes.shape != (spec.n_users,):
            raise ValueError(
                f"homes must have shape ({spec.n_users},), got {homes.shape}"
            )
        n_windows = -(-spec.n_users // window_size)
        children = gen.spawn(n_windows)
        for w, child in enumerate(children):
            lo = w * window_size
            hi = min(lo + window_size, spec.n_users)
            sub = replace(spec, n_users=hi - lo)
            yield generate_request_batch(
                network, app, sub, rng=child, homes=homes[lo:hi]
            )

    if prefetch:
        from repro.workload.requests import prefetch_batches

        return prefetch_batches(_windows(), depth=prefetch)
    return _windows()


def reindex_requests(requests: Sequence[UserRequest]) -> list[UserRequest]:
    """Return requests with ``index`` renumbered consecutively from 0."""
    return [
        UserRequest(
            index=h,
            home=req.home,
            chain=req.chain,
            data_in=req.data_in,
            data_out=req.data_out,
            edge_data=req.edge_data,
        )
        for h, req in enumerate(requests)
    ]
