"""User placement and request generation (paper §V.A workload).

Users are associated with the edge server covering their location; the
paper distributes them around base stations near the National Stadium and
samples their service chains from the eshopOnContainers dependency graph
with stochastic dependencies.  :func:`generate_requests` reproduces this:
spatially clustered home assignment (a small number of hot cells receive
most users, matching the stadium scenario) and chain sampling via
:func:`repro.microservices.chains.sample_chain`.

Data volumes follow §V.A: per-request upload/response sizes and per-edge
flows derived from each microservice's ``data_out`` with multiplicative
noise, spanning the paper's [1, 80] GB range once scaled by request rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.microservices.application import Application
from repro.microservices.chains import sample_chain
from repro.network.topology import EdgeNetwork
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability
from repro.workload.requests import UserRequest


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the request generator.

    Attributes
    ----------
    n_users:
        Number of user requests ``|U|``.
    hotspot_fraction:
        Fraction of servers that act as hotspots (crowded cells near the
        stadium).  Hotspots receive ``hotspot_weight`` times the demand
        of ordinary cells.
    hotspot_weight:
        Demand multiplier of hotspot cells.
    length_bias:
        Chain-continuation probability (geometric chain lengths).
    min_chain, max_chain:
        Chain length limits.
    data_in_range, data_out_range:
        Uniform ranges (GB) for ``r_in^h`` and ``r_out^h``.
    edge_noise:
        Multiplicative jitter on per-edge data flows (±fraction).
    data_scale:
        Global multiplier applied to every data volume (upload, response
        and per-edge flows).  The experiment scenarios use it to bring
        transfer delays into the paper's regime where latency and cost
        terms of the objective are comparable (§V.A).
    """

    n_users: int
    hotspot_fraction: float = 0.25
    hotspot_weight: float = 4.0
    length_bias: float = 0.7
    min_chain: int = 2
    max_chain: int = 6
    data_in_range: tuple[float, float] = (0.5, 2.0)
    data_out_range: tuple[float, float] = (0.2, 1.0)
    edge_noise: float = 0.3
    data_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive("n_users", self.n_users)
        check_probability("hotspot_fraction", self.hotspot_fraction)
        check_positive("hotspot_weight", self.hotspot_weight)
        check_probability("length_bias", self.length_bias)
        if not (1 <= self.min_chain <= self.max_chain):
            raise ValueError(
                f"invalid chain bounds: min={self.min_chain} max={self.max_chain}"
            )
        check_probability("edge_noise", self.edge_noise)
        check_positive("data_scale", self.data_scale)


def place_users(
    network: EdgeNetwork,
    n_users: int,
    rng: SeedLike = None,
    hotspot_fraction: float = 0.25,
    hotspot_weight: float = 4.0,
) -> np.ndarray:
    """Sample home-server indices for ``n_users`` with spatial hotspots.

    A ``hotspot_fraction`` of servers is designated hot (at least one);
    hot servers are ``hotspot_weight`` times as likely to receive a user.
    Returns an ``(n_users,)`` int array of server indices.
    """
    check_positive("n_users", n_users)
    gen = as_generator(rng)
    n = network.n
    n_hot = max(1, int(round(hotspot_fraction * n)))
    hot = gen.choice(n, size=n_hot, replace=False)
    weights = np.ones(n, dtype=np.float64)
    weights[hot] = hotspot_weight
    weights /= weights.sum()
    return gen.choice(n, size=n_users, p=weights)


def generate_requests(
    network: EdgeNetwork,
    app: Application,
    spec: WorkloadSpec,
    rng: SeedLike = None,
    homes: Optional[Sequence[int]] = None,
) -> list[UserRequest]:
    """Generate ``spec.n_users`` user requests on ``network`` over ``app``.

    ``homes`` overrides the spatial placement (used by the mobility-driven
    online simulator, which moves users between slots but keeps their
    service chains).
    """
    gen = as_generator(rng)
    if homes is None:
        homes = place_users(
            network,
            spec.n_users,
            gen,
            hotspot_fraction=spec.hotspot_fraction,
            hotspot_weight=spec.hotspot_weight,
        )
    homes = np.asarray(homes, dtype=np.int64)
    if homes.shape != (spec.n_users,):
        raise ValueError(
            f"homes must have shape ({spec.n_users},), got {homes.shape}"
        )

    requests: list[UserRequest] = []
    for h in range(spec.n_users):
        chain = sample_chain(
            app,
            gen,
            length_bias=spec.length_bias,
            min_length=spec.min_chain,
            max_length=spec.max_chain,
        )
        edge_data = tuple(
            float(
                spec.data_scale
                * app.service(a).data_out
                * (1.0 + gen.uniform(-spec.edge_noise, spec.edge_noise))
            )
            for a in chain[:-1]
        )
        requests.append(
            UserRequest(
                index=h,
                home=int(homes[h]),
                chain=chain,
                data_in=float(spec.data_scale * gen.uniform(*spec.data_in_range)),
                data_out=float(spec.data_scale * gen.uniform(*spec.data_out_range)),
                edge_data=edge_data,
            )
        )
    return requests


def reindex_requests(requests: Sequence[UserRequest]) -> list[UserRequest]:
    """Return requests with ``index`` renumbered consecutively from 0."""
    return [
        UserRequest(
            index=h,
            home=req.home,
            chain=req.chain,
            data_in=req.data_in,
            data_out=req.data_out,
            edge_data=req.edge_data,
        )
        for h, req in enumerate(requests)
    ]
