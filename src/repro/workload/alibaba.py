"""Alibaba-cluster-style call-graph traces and similarity analysis (Fig. 3).

The paper motivates SoCL by analyzing the Alibaba Cluster Trace Program:
taking the 10 most frequent services over a one-hour window, it reports
(a) widely varying similarity across trace files and (b) for services
with over 12 microservices in their dependency chain, a *maximum*
pairwise trace similarity of only 0.65 — i.e. trigger points and
dependency structures are diverse.

We cannot ship the proprietary trace, so this module synthesizes
call-graph traces with the same knobs the analysis depends on:

* a per-service base dependency chain (length configurable, ≥ 12 for the
  Fig. 3(b) regime),
* per-trace structural perturbation — services are dropped, reordered in
  bounded windows, or substituted, so two traces of the same service
  share only part of their structure,
* heterogeneous trigger points (entry microservices differ per trace).

Similarity between two traces is Jaccard over their dependency edges —
insensitive to invocation counts, sensitive to structure, which matches
the "similarity of dependency structures" the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class CallGraphTrace:
    """One recorded call-graph trace of a service.

    ``chain`` is the observed microservice invocation sequence; edges are
    derived consecutive pairs.
    """

    service: str
    chain: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.chain) < 1:
            raise ValueError("trace chain must be non-empty")

    @property
    def edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(zip(self.chain, self.chain[1:]))

    @property
    def length(self) -> int:
        return len(self.chain)


def trace_similarity(a: CallGraphTrace, b: CallGraphTrace) -> float:
    """Jaccard similarity of the dependency-edge sets of two traces."""
    ea, eb = a.edges, b.edges
    if not ea and not eb:
        # Both single-node traces: similar iff same node.
        return 1.0 if a.chain == b.chain else 0.0
    union = ea | eb
    if not union:
        return 0.0
    return len(ea & eb) / len(union)


def synthesize_traces(
    n_services: int = 10,
    traces_per_service: int = 20,
    chain_length: int = 14,
    drop_prob: float = 0.25,
    swap_prob: float = 0.2,
    substitute_prob: float = 0.15,
    seed: SeedLike = None,
) -> list[CallGraphTrace]:
    """Generate perturbed call-graph traces for ``n_services`` services.

    Each service has a canonical chain ``svc<j>-ms0 … ms<L-1>``; every
    recorded trace perturbs it by dropping microservices (prob
    ``drop_prob`` each, keeping at least 2), swapping adjacent pairs
    (``swap_prob``), and substituting alternates (``substitute_prob``),
    plus a random trigger offset — reproducing the diversity the paper
    measures.
    """
    check_positive("n_services", n_services)
    check_positive("traces_per_service", traces_per_service)
    if chain_length < 2:
        raise ValueError(f"chain_length must be >= 2, got {chain_length}")
    check_probability("drop_prob", drop_prob)
    check_probability("swap_prob", swap_prob)
    check_probability("substitute_prob", substitute_prob)
    gen = as_generator(seed)

    traces: list[CallGraphTrace] = []
    for j in range(n_services):
        base = [f"svc{j}-ms{i}" for i in range(chain_length)]
        for _ in range(traces_per_service):
            chain = list(base)
            # heterogeneous trigger point: trim a random short prefix
            start = int(gen.integers(0, max(1, chain_length // 4)))
            chain = chain[start:]
            # drop
            kept = [ms for ms in chain if gen.random() >= drop_prob]
            if len(kept) < 2:
                kept = chain[:2]
            chain = kept
            # adjacent swaps
            for i in range(len(chain) - 1):
                if gen.random() < swap_prob:
                    chain[i], chain[i + 1] = chain[i + 1], chain[i]
            # substitutions with alternate implementations
            chain = [
                f"{ms}-alt" if gen.random() < substitute_prob else ms
                for ms in chain
            ]
            traces.append(CallGraphTrace(service=f"svc{j}", chain=tuple(chain)))
    return traces


def similarity_matrix(traces: Sequence[CallGraphTrace]) -> np.ndarray:
    """Symmetric pairwise-similarity matrix over ``traces``."""
    n = len(traces)
    sim = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            s = trace_similarity(traces[i], traces[j])
            sim[i, j] = sim[j, i] = s
    return sim


def service_similarity_profile(
    traces: Sequence[CallGraphTrace],
) -> dict[str, dict[str, float]]:
    """Per-service similarity statistics (Fig. 3(b) reproduction).

    For each service, computes min / mean / max pairwise similarity of
    its traces.  The paper's headline observation is that even the
    maximum stays well below 1 (≈ 0.65) for long-chain services.
    """
    by_service: dict[str, list[CallGraphTrace]] = {}
    for tr in traces:
        by_service.setdefault(tr.service, []).append(tr)

    profile: dict[str, dict[str, float]] = {}
    for service, group in sorted(by_service.items()):
        if len(group) < 2:
            profile[service] = {"min": 1.0, "mean": 1.0, "max": 1.0, "count": 1.0}
            continue
        sims = [
            trace_similarity(group[i], group[j])
            for i in range(len(group))
            for j in range(i + 1, len(group))
        ]
        arr = np.array(sims)
        profile[service] = {
            "min": float(arr.min()),
            "mean": float(arr.mean()),
            "max": float(arr.max()),
            "count": float(len(group)),
        }
    return profile


def cross_file_similarity(
    traces_a: Sequence[CallGraphTrace],
    traces_b: Sequence[CallGraphTrace],
) -> np.ndarray:
    """All-pairs similarity between two trace files (Fig. 3(a))."""
    out = np.zeros((len(traces_a), len(traces_b)))
    for i, ta in enumerate(traces_a):
        for j, tb in enumerate(traces_b):
            out[i, j] = trace_similarity(ta, tb)
    return out
