"""User request model (paper §III.A).

A :class:`UserRequest` ``u_h`` is a directed chain of microservices with:

* ``home`` — the edge server ``v_k`` the user is associated with
  (``f(u_h) = k``; the set ``U_k`` groups requests by home server),
* ``chain`` — the microservice indices ``M_h`` in invocation order,
* ``edge_data`` — the data flow ``r_{m_i→m_j}`` (GB) on each chain edge,
* ``data_in`` / ``data_out`` — upload ``r_in^h`` and result ``r_out^h``
  volumes for the ``d_in`` / ``d_out`` terms of Eq. (2).
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

import numpy as np

from repro.utils.validation import check_non_negative


def _readonly(arr: np.ndarray) -> np.ndarray:
    """Freeze ``arr`` in place and return it."""
    arr.flags.writeable = False
    return arr


@dataclass(frozen=True)
class UserRequest:
    """A single user service request ``u_h``."""

    index: int
    home: int
    chain: tuple[int, ...]
    data_in: float
    data_out: float
    edge_data: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.chain:
            raise ValueError("request chain must contain at least one microservice")
        if len(set(self.chain)) != len(self.chain):
            raise ValueError(f"request chain has repeated services: {self.chain}")
        if len(self.edge_data) != len(self.chain) - 1:
            raise ValueError(
                f"edge_data length {len(self.edge_data)} != chain edges "
                f"{len(self.chain) - 1}"
            )
        check_non_negative("data_in", self.data_in)
        check_non_negative("data_out", self.data_out)
        for d in self.edge_data:
            check_non_negative("edge_data entry", d)

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of microservices in the chain ``|M_h|``."""
        return len(self.chain)

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """Dependency edges ``E_h`` in order."""
        return tuple(zip(self.chain, self.chain[1:]))

    def uses(self, service: int) -> bool:
        """Whether microservice ``m_i`` appears in this request's chain."""
        return service in self.chain

    def position_of(self, service: int) -> int:
        """Chain position of ``service`` (raises ``ValueError`` if absent)."""
        return self.chain.index(service)

    def data_into(self, service: int) -> float:
        """Data volume entering ``service`` within this chain.

        For the first microservice this is the user's upload ``r_in^h``;
        for later positions it is the preceding edge's flow.
        """
        pos = self.position_of(service)
        if pos == 0:
            return self.data_in
        return self.edge_data[pos - 1]


class RequestBatch(SequenceABC):
    """Columnar (struct-of-arrays) collection of user requests.

    Stores the whole workload in six flat NumPy arrays instead of
    ``n_users`` Python objects, so slot-scale request generation and the
    vectorized solver/replay paths never materialize per-request
    objects.  Chains use CSR layout: request ``h``'s services are
    ``chains[chain_offsets[h]:chain_offsets[h+1]]`` and its per-edge
    data flows are the matching slice of ``edge_data`` at offset
    ``chain_offsets[h] - h`` (each request has ``length - 1`` edges).

    The batch is an immutable :class:`collections.abc.Sequence` of
    :class:`UserRequest` **views**, created lazily and memoized, so all
    existing per-request consumers (the event-loop cluster, tests,
    serialization) keep working unchanged while columnar consumers read
    the arrays directly.
    """

    __slots__ = (
        "index",
        "homes",
        "chains",
        "chain_offsets",
        "data_in",
        "data_out",
        "edge_data",
        "_lengths",
        "_views",
    )

    def __init__(
        self,
        index: np.ndarray,
        homes: np.ndarray,
        chains: np.ndarray,
        chain_offsets: np.ndarray,
        data_in: np.ndarray,
        data_out: np.ndarray,
        edge_data: np.ndarray,
        validate: bool = True,
    ):
        self.index = _readonly(np.asarray(index, dtype=np.int64))
        self.homes = _readonly(np.asarray(homes, dtype=np.int64))
        self.chains = _readonly(np.asarray(chains, dtype=np.int64))
        self.chain_offsets = _readonly(
            np.asarray(chain_offsets, dtype=np.int64)
        )
        self.data_in = _readonly(np.asarray(data_in, dtype=np.float64))
        self.data_out = _readonly(np.asarray(data_out, dtype=np.float64))
        self.edge_data = _readonly(np.asarray(edge_data, dtype=np.float64))
        self._lengths = _readonly(np.diff(self.chain_offsets))
        self._views: dict[int, UserRequest] = {}
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = self.n_requests
        if self.chain_offsets.shape != (n + 1,) or (
            n and self.chain_offsets[0] != 0
        ):
            raise ValueError(
                f"chain_offsets must be ({n + 1},) starting at 0, got "
                f"shape {self.chain_offsets.shape}"
            )
        for name, arr in (
            ("index", self.index),
            ("data_in", self.data_in),
            ("data_out", self.data_out),
        ):
            if arr.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {arr.shape}")
        if n == 0:
            return
        if self.chains.shape != (int(self.chain_offsets[-1]),):
            raise ValueError(
                f"chains length {self.chains.size} does not match "
                f"chain_offsets end {int(self.chain_offsets[-1])}"
            )
        if (self._lengths < 1).any():
            raise ValueError("request chain must contain at least one microservice")
        if self.edge_data.shape != (self.chains.size - n,):
            raise ValueError(
                f"edge_data length {self.edge_data.size} != chain edges "
                f"{self.chains.size - n}"
            )
        rows = np.repeat(np.arange(n), self._lengths)
        order = np.lexsort((self.chains, rows))
        same_row = rows[order][1:] == rows[order][:-1]
        dup = same_row & (self.chains[order][1:] == self.chains[order][:-1])
        if dup.any():
            h = int(rows[order][1:][np.argmax(dup)])
            lo, hi = int(self.chain_offsets[h]), int(self.chain_offsets[h + 1])
            chain = tuple(self.chains[lo:hi].tolist())
            raise ValueError(f"request chain has repeated services: {chain}")
        for name, arr in (
            ("data_in", self.data_in),
            ("data_out", self.data_out),
            ("edge_data", self.edge_data),
        ):
            if arr.size and not np.isfinite(arr).all():
                h = int(np.flatnonzero(~np.isfinite(arr))[0])
                raise ValueError(
                    f"{name} must be finite, got {arr[h]!r} at position {h}"
                )
        if self.data_in.size:
            check_non_negative("data_in", float(self.data_in.min()))
            check_non_negative("data_out", float(self.data_out.min()))
        if self.edge_data.size:
            check_non_negative("edge_data entry", float(self.edge_data.min()))

    # -- construction ---------------------------------------------------
    @classmethod
    def from_requests(
        cls, requests: Iterable[UserRequest]
    ) -> "RequestBatch":
        """Build a columnar batch from per-request objects."""
        reqs = list(requests)
        n = len(reqs)
        offsets = np.zeros(n + 1, dtype=np.int64)
        for h, r in enumerate(reqs):
            offsets[h + 1] = offsets[h] + r.length
        chains = np.empty(int(offsets[-1]), dtype=np.int64)
        edge = np.empty(int(offsets[-1]) - n, dtype=np.float64)
        pos = 0
        for h, r in enumerate(reqs):
            chains[offsets[h] : offsets[h + 1]] = r.chain
            if r.edge_data:
                edge[pos : pos + len(r.edge_data)] = r.edge_data
            pos += len(r.edge_data)
        return cls(
            index=np.array([r.index for r in reqs], dtype=np.int64),
            homes=np.array([r.home for r in reqs], dtype=np.int64),
            chains=chains,
            chain_offsets=offsets,
            data_in=np.array([r.data_in for r in reqs], dtype=np.float64),
            data_out=np.array([r.data_out for r in reqs], dtype=np.float64),
            edge_data=edge,
        )

    @classmethod
    def concat(cls, batches: Sequence["RequestBatch"]) -> "RequestBatch":
        """Stitch a sequence of batches into one, renumbering ``index``.

        The canonical consumer is streaming generation
        (:func:`repro.workload.users.generate_request_windows`): windows
        are produced one at a time with bounded memory and concatenated
        — or fed to per-shard replay directly — instead of ad-hoc list
        assembly in workload callers.  Request order is the batch order;
        ``index`` is renumbered consecutively so the result is a valid
        standalone workload.  CSR offsets are re-based, all other
        columns concatenate verbatim, and the merged batch re-validates.
        """
        batches = list(batches)
        if not batches:
            raise ValueError("concat requires at least one batch")
        for b in batches:
            if not isinstance(b, RequestBatch):
                raise TypeError(
                    f"concat expects RequestBatch items, got {type(b).__name__}"
                )
        sizes = np.array([b.n_requests for b in batches], dtype=np.int64)
        n = int(sizes.sum())
        offsets = np.zeros(n + 1, dtype=np.int64)
        pos = 0
        base = 0
        for b in batches:
            k = b.n_requests
            offsets[pos + 1 : pos + k + 1] = b.chain_offsets[1:] + base
            base += int(b.chain_offsets[-1])
            pos += k
        return cls(
            index=np.arange(n, dtype=np.int64),
            homes=np.concatenate([b.homes for b in batches]),
            chains=np.concatenate([b.chains for b in batches]),
            chain_offsets=offsets,
            data_in=np.concatenate([b.data_in for b in batches]),
            data_out=np.concatenate([b.data_out for b in batches]),
            edge_data=np.concatenate([b.edge_data for b in batches]),
        )

    def take(self, indices: np.ndarray) -> "RequestBatch":
        """Gather a sub-batch of the given request positions, in order.

        The slice-by-region helper behind sharded replay: callers pass
        the positions whose ``homes`` fall in one region (e.g.
        ``np.nonzero(region_of[batch.homes] == r)[0]``) and get a
        self-contained columnar batch.  ``index`` keeps the original
        values so provenance survives the slicing; duplicates are
        allowed (a request may be replayed under several slots).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError(
                f"take expects a 1-D index array, got shape {indices.shape}"
            )
        n = self.n_requests
        if indices.size and (
            int(indices.min()) < 0 or int(indices.max()) >= n
        ):
            raise IndexError(
                f"take indices must lie in [0, {n}), got range "
                f"[{int(indices.min())}, {int(indices.max())}]"
            )
        lens = self._lengths[indices]
        offsets = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        total = int(offsets[-1])
        flat = (
            np.arange(total)
            + np.repeat(self.chain_offsets[indices] - offsets[:-1], lens)
            if total
            else np.empty(0, dtype=np.int64)
        )
        e_off = self.edge_offsets
        e_lens = lens - 1
        e_total = int(e_lens.sum())
        e_cum = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(e_lens, out=e_cum[1:])
        e_flat = (
            np.arange(e_total)
            + np.repeat(e_off[indices] - e_cum[:-1], e_lens)
            if e_total
            else np.empty(0, dtype=np.int64)
        )
        return RequestBatch(
            index=self.index[indices],
            homes=self.homes[indices],
            chains=self.chains[flat],
            chain_offsets=offsets,
            data_in=self.data_in[indices],
            data_out=self.data_out[indices],
            edge_data=self.edge_data[e_flat],
            validate=False,
        )

    # -- sizes ----------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Number of requests in the batch."""
        return int(self.homes.size)

    @property
    def lengths(self) -> np.ndarray:
        """Per-request chain lengths ``|M_h|`` (read-only)."""
        return self._lengths

    @property
    def edge_offsets(self) -> np.ndarray:
        """CSR offsets into :attr:`edge_data` (request ``h`` owns
        ``edge_data[edge_offsets[h]:edge_offsets[h+1]]``)."""
        return self.chain_offsets - np.arange(self.n_requests + 1)

    # -- sequence protocol ----------------------------------------------
    def __len__(self) -> int:
        return self.n_requests

    def __getitem__(
        self, item: Union[int, slice]
    ) -> Union[UserRequest, list[UserRequest]]:
        if isinstance(item, slice):
            return [self[i] for i in range(*item.indices(self.n_requests))]
        h = int(item)
        if h < 0:
            h += self.n_requests
        if not (0 <= h < self.n_requests):
            raise IndexError(f"request index {item} out of range")
        view = self._views.get(h)
        if view is None:
            lo = int(self.chain_offsets[h])
            hi = int(self.chain_offsets[h + 1])
            view = UserRequest(
                index=int(self.index[h]),
                home=int(self.homes[h]),
                chain=tuple(self.chains[lo:hi].tolist()),
                data_in=float(self.data_in[h]),
                data_out=float(self.data_out[h]),
                edge_data=tuple(
                    self.edge_data[lo - h : hi - h - 1].tolist()
                ),
            )
            self._views[h] = view
        return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestBatch(requests={self.n_requests}, "
            f"invocations={self.chains.size})"
        )

    # -- columnar builders (bit-identical to the per-request loops) -----
    def padded_chain_matrix(self) -> np.ndarray:
        """``(H, Lmax)`` service-index matrix, −1 past each chain end."""
        n = self.n_requests
        width = int(self._lengths.max()) if n else 1
        mat = np.full((n, width), -1, dtype=np.int64)
        rows = np.repeat(np.arange(n), self._lengths)
        cols = np.arange(self.chains.size) - np.repeat(
            self.chain_offsets[:-1], self._lengths
        )
        mat[rows, cols] = self.chains
        return mat

    def padded_edge_matrix(self) -> np.ndarray:
        """``(H, max(Lmax−1, 1))`` per-edge data flows, 0 past chain end."""
        n = self.n_requests
        width = int(self._lengths.max()) if n else 1
        mat = np.zeros((n, max(width - 1, 1)), dtype=np.float64)
        e_len = self._lengths - 1
        rows = np.repeat(np.arange(n), e_len)
        cols = np.arange(self.edge_data.size) - np.repeat(
            self.edge_offsets[:-1], e_len
        )
        mat[rows, cols] = self.edge_data
        return mat

    def inflow_flat(self) -> np.ndarray:
        """Data entering each chain position, CSR-flat (upload first)."""
        flat = np.empty(self.chains.size, dtype=np.float64)
        firsts = np.zeros(self.chains.size, dtype=bool)
        firsts[self.chain_offsets[:-1]] = True
        flat[self.chain_offsets[:-1]] = self.data_in
        flat[~firsts] = self.edge_data
        return flat

    def demand_counts(self, n_services: int, n_servers: int) -> np.ndarray:
        """``(S, N)`` request counts per (service, home) pair."""
        counts = np.zeros((n_services, n_servers), dtype=np.int64)
        homes_rep = np.repeat(self.homes, self._lengths)
        np.add.at(counts, (self.chains, homes_rep), 1)
        return counts

    def demand_data(self, n_services: int, n_servers: int) -> np.ndarray:
        """``(S, N)`` inbound data volume per (service, home) pair.

        ``np.add.at`` applies the unbuffered adds in flat request-major
        order — the same accumulation order as the per-request loop, so
        the floating-point result is bit-identical.
        """
        data = np.zeros((n_services, n_servers), dtype=np.float64)
        homes_rep = np.repeat(self.homes, self._lengths)
        np.add.at(data, (self.chains, homes_rep), self.inflow_flat())
        return data


def requests_by_server(
    requests: Sequence[UserRequest], n_servers: int
) -> list[list[UserRequest]]:
    """Group requests by home server: the paper's ``U_k`` sets."""
    groups: list[list[UserRequest]] = [[] for _ in range(n_servers)]
    for req in requests:
        if not (0 <= req.home < n_servers):
            raise IndexError(
                f"request {req.index} home {req.home} outside [0, {n_servers})"
            )
        groups[req.home].append(req)
    return groups


def services_in_requests(requests: Iterable[UserRequest]) -> list[int]:
    """Sorted set of microservices referenced by any request."""
    return sorted({s for req in requests for s in req.chain})


def demand_matrix(
    requests: Sequence[UserRequest], n_services: int, n_servers: int
) -> np.ndarray:
    """``(n_services, n_servers)`` count matrix ``|U^{m_i}_{v_k}|``.

    Entry ``(i, k)`` is the number of requests homed at ``v_k`` whose
    chain contains ``m_i`` — the quantity Alg. 2 computes in lines 1-3.
    """
    if isinstance(requests, RequestBatch):
        return requests.demand_counts(n_services, n_servers)
    counts = np.zeros((n_services, n_servers), dtype=np.int64)
    for req in requests:
        for svc in req.chain:
            counts[svc, req.home] += 1
    return counts


def data_demand_matrix(
    requests: Sequence[UserRequest], n_services: int, n_servers: int
) -> np.ndarray:
    """``(n_services, n_servers)`` total inbound data per service/home pair.

    Entry ``(i, k)`` sums, over requests homed at ``v_k``, the data volume
    entering ``m_i`` in each chain — the ``r_i`` weights used by the
    proactive factor (Def. 5) and instance contribution (Def. 7).
    """
    if isinstance(requests, RequestBatch):
        return requests.demand_data(n_services, n_servers)
    data = np.zeros((n_services, n_servers), dtype=np.float64)
    for req in requests:
        for svc in req.chain:
            data[svc, req.home] += req.data_into(svc)
    return data


def prefetch_batches(batches: Iterable, depth: int = 1) -> Iterable:
    """Iterate ``batches`` with a background producer thread.

    Yields exactly the items of ``batches`` in order, but draws them on
    a daemon thread through a bounded queue of ``depth`` items, so the
    cost of producing batch *w+1* (e.g. a
    :func:`~repro.workload.users.generate_request_windows` window's
    chain/data sampling) overlaps the consumer's work on batch *w*.
    Order, contents, and any RNG draw sequence inside ``batches`` are
    unchanged — the iterable itself is only ever advanced from the one
    producer thread.

    A producer exception is re-raised at the consumer's matching
    ``next()``; abandoning the iterator early (``break``/``close()``)
    stops and joins the producer promptly instead of leaking a thread
    blocked on a full queue.
    """
    import queue as queue_mod
    import threading

    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    q: queue_mod.Queue = queue_mod.Queue(maxsize=int(depth))
    done = object()
    stop = threading.Event()
    error: list[BaseException] = []

    def _put(item) -> bool:
        while not stop.is_set():
            try:
                q.put(item, timeout=0.05)
                return True
            except queue_mod.Full:
                continue
        return False

    def _produce() -> None:
        try:
            for item in batches:
                if not _put(item):
                    return
        except BaseException as exc:  # noqa: BLE001 - re-raised by consumer
            error.append(exc)
        _put(done)

    thread = threading.Thread(
        target=_produce, name="batch-prefetch", daemon=True
    )
    thread.start()
    try:
        while True:
            item = q.get()
            if item is done:
                break
            yield item
        if error:
            raise error[0]
    finally:
        stop.set()
        thread.join()
