"""User request model (paper §III.A).

A :class:`UserRequest` ``u_h`` is a directed chain of microservices with:

* ``home`` — the edge server ``v_k`` the user is associated with
  (``f(u_h) = k``; the set ``U_k`` groups requests by home server),
* ``chain`` — the microservice indices ``M_h`` in invocation order,
* ``edge_data`` — the data flow ``r_{m_i→m_j}`` (GB) on each chain edge,
* ``data_in`` / ``data_out`` — upload ``r_in^h`` and result ``r_out^h``
  volumes for the ``d_in`` / ``d_out`` terms of Eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class UserRequest:
    """A single user service request ``u_h``."""

    index: int
    home: int
    chain: tuple[int, ...]
    data_in: float
    data_out: float
    edge_data: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.chain:
            raise ValueError("request chain must contain at least one microservice")
        if len(set(self.chain)) != len(self.chain):
            raise ValueError(f"request chain has repeated services: {self.chain}")
        if len(self.edge_data) != len(self.chain) - 1:
            raise ValueError(
                f"edge_data length {len(self.edge_data)} != chain edges "
                f"{len(self.chain) - 1}"
            )
        check_non_negative("data_in", self.data_in)
        check_non_negative("data_out", self.data_out)
        for d in self.edge_data:
            check_non_negative("edge_data entry", d)

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of microservices in the chain ``|M_h|``."""
        return len(self.chain)

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """Dependency edges ``E_h`` in order."""
        return tuple(zip(self.chain, self.chain[1:]))

    def uses(self, service: int) -> bool:
        """Whether microservice ``m_i`` appears in this request's chain."""
        return service in self.chain

    def position_of(self, service: int) -> int:
        """Chain position of ``service`` (raises ``ValueError`` if absent)."""
        return self.chain.index(service)

    def data_into(self, service: int) -> float:
        """Data volume entering ``service`` within this chain.

        For the first microservice this is the user's upload ``r_in^h``;
        for later positions it is the preceding edge's flow.
        """
        pos = self.position_of(service)
        if pos == 0:
            return self.data_in
        return self.edge_data[pos - 1]


def requests_by_server(
    requests: Sequence[UserRequest], n_servers: int
) -> list[list[UserRequest]]:
    """Group requests by home server: the paper's ``U_k`` sets."""
    groups: list[list[UserRequest]] = [[] for _ in range(n_servers)]
    for req in requests:
        if not (0 <= req.home < n_servers):
            raise IndexError(
                f"request {req.index} home {req.home} outside [0, {n_servers})"
            )
        groups[req.home].append(req)
    return groups


def services_in_requests(requests: Iterable[UserRequest]) -> list[int]:
    """Sorted set of microservices referenced by any request."""
    return sorted({s for req in requests for s in req.chain})


def demand_matrix(
    requests: Sequence[UserRequest], n_services: int, n_servers: int
) -> np.ndarray:
    """``(n_services, n_servers)`` count matrix ``|U^{m_i}_{v_k}|``.

    Entry ``(i, k)`` is the number of requests homed at ``v_k`` whose
    chain contains ``m_i`` — the quantity Alg. 2 computes in lines 1-3.
    """
    counts = np.zeros((n_services, n_servers), dtype=np.int64)
    for req in requests:
        for svc in req.chain:
            counts[svc, req.home] += 1
    return counts


def data_demand_matrix(
    requests: Sequence[UserRequest], n_services: int, n_servers: int
) -> np.ndarray:
    """``(n_services, n_servers)`` total inbound data per service/home pair.

    Entry ``(i, k)`` sums, over requests homed at ``v_k``, the data volume
    entering ``m_i`` in each chain — the ``r_i`` weights used by the
    proactive factor (Def. 5) and instance contribution (Def. 7).
    """
    data = np.zeros((n_services, n_servers), dtype=np.float64)
    for req in requests:
        for svc in req.chain:
            data[svc, req.home] += req.data_into(svc)
    return data
