"""Demand forecasting for proactive provisioning.

The paper's motivation cites "the power of prediction: microservice
auto scaling via workload learning" [25] and its SoCL runs one-shot on
*observed* demand; forecasting is the natural extension (and the basis
of the proactive mode in :mod:`repro.core.online`).  Three classic
estimators over per-interval request volumes:

* :class:`EwmaForecaster` — exponentially weighted moving average;
* :class:`HoltForecaster` — double exponential smoothing (level+trend),
  which tracks the diurnal ramps of Fig. 4 far better than EWMA;
* :class:`SlidingMaxForecaster` — conservative envelope (recent max),
  the over-provisioning baseline.

All share ``update(value) -> None`` / ``forecast(horizon) -> float`` and
are evaluated by :func:`evaluate_forecaster` (MAE / RMSE / bias) so the
online simulator can pick per deployment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.utils.validation import check_positive, check_probability


@runtime_checkable
class Forecaster(Protocol):
    """Interface shared by all demand estimators."""

    def update(self, value: float) -> None:  # pragma: no cover - protocol
        ...

    def forecast(self, horizon: int = 1) -> float:  # pragma: no cover
        ...


class EwmaForecaster:
    """Exponentially weighted moving average: ŷ = α·y + (1−α)·ŷ."""

    def __init__(self, alpha: float = 0.3, initial: Optional[float] = None):
        check_probability("alpha", alpha)
        if alpha == 0.0:
            raise ValueError("alpha must be positive for the EWMA to adapt")
        self.alpha = alpha
        self._level: Optional[float] = initial
        self.n_observations = 0

    def update(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"demand cannot be negative, got {value}")
        if self._level is None:
            self._level = float(value)
        else:
            self._level = self.alpha * value + (1.0 - self.alpha) * self._level
        self.n_observations += 1

    def forecast(self, horizon: int = 1) -> float:
        check_positive("horizon", horizon)
        if self._level is None:
            return 0.0
        return float(self._level)  # flat forecast at the smoothed level


class HoltForecaster:
    """Holt's linear (double exponential) smoothing: level + trend.

    ``forecast(h) = level + h·trend``, with the trend damped by ``phi``
    per step so long horizons do not extrapolate diurnal ramps forever.
    """

    def __init__(self, alpha: float = 0.4, beta: float = 0.2, phi: float = 0.9):
        check_probability("alpha", alpha)
        check_probability("beta", beta)
        check_probability("phi", phi)
        if alpha == 0.0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.beta = beta
        self.phi = phi
        self._level: Optional[float] = None
        self._trend = 0.0
        self.n_observations = 0

    def update(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"demand cannot be negative, got {value}")
        if self._level is None:
            self._level = float(value)
            self._trend = 0.0
        else:
            prev_level = self._level
            self._level = self.alpha * value + (1.0 - self.alpha) * (
                self._level + self.phi * self._trend
            )
            self._trend = (
                self.beta * (self._level - prev_level)
                + (1.0 - self.beta) * self.phi * self._trend
            )
        self.n_observations += 1

    def forecast(self, horizon: int = 1) -> float:
        check_positive("horizon", horizon)
        if self._level is None:
            return 0.0
        damp = sum(self.phi**i for i in range(1, horizon + 1))
        return float(max(0.0, self._level + damp * self._trend))


class SlidingMaxForecaster:
    """Conservative envelope: the maximum over the last ``window`` values."""

    def __init__(self, window: int = 6):
        check_positive("window", window)
        self.window = int(window)
        self._values: deque[float] = deque(maxlen=self.window)

    def update(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"demand cannot be negative, got {value}")
        self._values.append(float(value))

    def forecast(self, horizon: int = 1) -> float:
        check_positive("horizon", horizon)
        if not self._values:
            return 0.0
        return float(max(self._values))

    @property
    def n_observations(self) -> int:
        return len(self._values)


@dataclass(frozen=True)
class ForecastScore:
    """Accuracy summary of a one-step-ahead backtest."""

    mae: float
    rmse: float
    bias: float  # mean (forecast − actual); >0 = over-provisioning
    n: int


def evaluate_forecaster(
    forecaster: Forecaster, series: Sequence[float], warmup: int = 3
) -> ForecastScore:
    """One-step-ahead backtest of ``forecaster`` over ``series``.

    The first ``warmup`` observations only train; afterwards each point
    is predicted before being revealed.
    """
    series = list(series)
    if warmup < 1:
        raise ValueError(f"warmup must be >= 1, got {warmup}")
    if len(series) <= warmup:
        raise ValueError(
            f"series of length {len(series)} too short for warmup {warmup}"
        )
    errors = []
    for t, value in enumerate(series):
        if t >= warmup:
            errors.append(forecaster.forecast(1) - value)
        forecaster.update(value)
    err = np.asarray(errors)
    return ForecastScore(
        mae=float(np.abs(err).mean()),
        rmse=float(np.sqrt((err**2).mean())),
        bias=float(err.mean()),
        n=len(errors),
    )
