"""repro — SoCL: Scalable and Latency-Optimized Microservices in
Serverless Edge Computing (CLUSTER 2025 reproduction).

Public API quick tour::

    from repro import (
        paper_scenario, SoCL, SoCLConfig,
        RandomProvisioning, JointDeploymentRouting, GreedyCombineOG,
        OptimalSolver, evaluate,
    )

    instance = paper_scenario(n_servers=10, n_users=40, budget=6000, seed=0)
    result = SoCL().solve(instance)
    print(result.report)          # objective, cost, latency
    print(result.feasibility)     # all paper constraints

Sub-packages:

* :mod:`repro.network` — edge topology, Shannon rates, virtual links
* :mod:`repro.microservices` — applications, the eshopOnContainers dataset
* :mod:`repro.workload` — requests, traces, mobility, Alibaba-style analysis
* :mod:`repro.model` — decisions, objective (Eq. 3/8), constraints (Eq. 4-6)
* :mod:`repro.ilp` — exact ILP (Gurobi stand-in) + branch & bound
* :mod:`repro.core` — the SoCL framework (partition → pre-provision → combine)
* :mod:`repro.baselines` — RP, JDR, GC-OG, OPT
* :mod:`repro.runtime` — discrete-event serverless edge cluster (K8s substitute)
* :mod:`repro.experiments` — scenario builders and per-figure generators
"""

from repro.baselines import (
    GreedyCombineOG,
    JointDeploymentRouting,
    KubeScheduler,
    OptimalSolver,
    RandomProvisioning,
)
from repro.core import OnlineSoCL, SoCL, SoCLConfig, SoCLResult, solve_socl
from repro.experiments import (
    build_scenario,
    compare_algorithms,
    paper_scenario,
    small_scenario,
)
from repro.microservices import Application, Microservice, eshop_application
from repro.model import (
    Placement,
    ProblemConfig,
    ProblemInstance,
    Routing,
    evaluate,
    greedy_routing,
    load_aware_routing,
    optimal_routing,
)
from repro.network import EdgeNetwork, EdgeServer, Link, stadium_topology
from repro.workload import RequestBatch, UserRequest, WorkloadSpec, generate_requests

__version__ = "1.0.0"

__all__ = [
    "SoCL",
    "SoCLConfig",
    "SoCLResult",
    "solve_socl",
    "RandomProvisioning",
    "KubeScheduler",
    "OnlineSoCL",
    "JointDeploymentRouting",
    "GreedyCombineOG",
    "OptimalSolver",
    "paper_scenario",
    "small_scenario",
    "build_scenario",
    "compare_algorithms",
    "Application",
    "Microservice",
    "eshop_application",
    "ProblemInstance",
    "ProblemConfig",
    "Placement",
    "Routing",
    "evaluate",
    "optimal_routing",
    "greedy_routing",
    "load_aware_routing",
    "EdgeNetwork",
    "EdgeServer",
    "Link",
    "stadium_topology",
    "UserRequest",
    "WorkloadSpec",
    "generate_requests",
    "RequestBatch",
    "__version__",
]
