"""Online provisioning with user behavior, forecasting and warm starts.

This example exercises the repository's extensions beyond the paper's
one-shot pipeline (its stated future work: "incorporate user behavior
modeling and preference integration"):

1. a :class:`repro.workload.BehaviorModel` gives each of 40 users stable
   entry preferences and session depth, so demand is correlated across
   slots;
2. an :class:`repro.core.OnlineSoCL` solver warm-starts from the
   previous slot's placement whenever the measured demand shift is
   small, falling back to full re-solves on regime changes;
3. a :class:`repro.workload.HoltForecaster` backtests one-step demand
   prediction against the realized volumes;
4. a node-failure schedule stresses the pipeline mid-trace.

Run:  python examples/online_behavior_forecast.py
"""

import numpy as np

from repro import ProblemConfig, ProblemInstance, eshop_application, stadium_topology
from repro.core import OnlineSoCL, SoCL
from repro.experiments import sparkline
from repro.runtime.failures import OutageSchedule, degrade_instance
from repro.workload import (
    BehaviorModel,
    HoltForecaster,
    behavioral_requests,
    evaluate_forecaster,
    generate_arrivals,
)


def main() -> None:
    network = stadium_topology(12, seed=3)
    app = eshop_application()
    config = ProblemConfig(weight=0.5, budget=6000.0)
    n_users = 40
    n_slots = 10

    model = BehaviorModel(app, n_users=n_users, seed=0)
    print("entrypoint popularity:", np.round(model.entry_distribution(), 3))

    trace = generate_arrivals(duration_hours=n_slots / 12, interval_minutes=5.0, seed=0)
    volumes = np.minimum(trace.volumes[:n_slots], n_users)
    print("request volume per slot:", volumes.tolist())

    rng = np.random.default_rng(7)
    homes = rng.integers(0, network.n, size=n_users)
    outages = OutageSchedule(network.n, fail_prob=0.1, repair_prob=0.6, seed=5)
    online = OnlineSoCL(shift_threshold=1.1)
    scratch_runtime = 0.0

    print(f"\n{'slot':>4} {'active':>6} {'down':>4} {'mode':>12} "
          f"{'objective':>10} {'redeploy':>8} {'runtime':>8}")
    means = []
    for slot in range(n_slots):
        active = rng.choice(n_users, size=max(1, int(volumes[slot])), replace=False)
        requests = behavioral_requests(
            network, app, model, rng=slot, homes=homes, data_scale=5.0
        )
        requests = [r for r in requests if r.index in set(active)]
        # reindex for the instance
        from repro.workload.users import reindex_requests

        instance = ProblemInstance(network, app, reindex_requests(requests), config)
        down = outages.step()
        if down:
            instance = degrade_instance(instance, down)

        result = online.solve(instance)
        fresh = SoCL().solve(instance)
        scratch_runtime += fresh.runtime
        means.append(result.report.mean_latency)
        print(
            f"{slot:>4} {len(requests):>6} {len(down):>4} "
            f"{result.extra['mode']:>12} {result.report.objective:>10.1f} "
            f"{result.extra['redeployed_instances']:>8} {result.runtime:>7.3f}s"
        )

    print("\nper-slot mean latency:", sparkline(means, width=40))
    print(f"online solver time vs scratch: see modes above "
          f"(scratch total {scratch_runtime:.2f}s)")

    # forecast the volume series
    score = evaluate_forecaster(HoltForecaster(), trace.volumes.tolist())
    print(
        f"\nHolt demand forecast over the full trace: MAE {score.mae:.1f} "
        f"RMSE {score.rmse:.1f} bias {score.bias:+.1f} ({score.n} points)"
    )


if __name__ == "__main__":
    main()
