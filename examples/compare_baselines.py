"""Baseline comparison: RP vs JDR vs GC-OG vs SoCL vs OPT.

Reproduces the structure of paper Figs. 7-8 at a scale that finishes in
about a minute: the heuristics run at growing user scales (Fig. 8's
sweep), and the exact ILP joins at a small scale to show the optimality
gap and the runtime explosion (Fig. 7).

Run:  python examples/compare_baselines.py
"""

from repro import (
    GreedyCombineOG,
    JointDeploymentRouting,
    OptimalSolver,
    RandomProvisioning,
    SoCL,
    compare_algorithms,
    paper_scenario,
    small_scenario,
)
from repro.experiments import format_table


def heuristic_sweep() -> None:
    print("=== heuristics across user scales (10 servers, budget 6000) ===")
    rows = []
    for n_users in (40, 80, 120):
        instance = paper_scenario(n_servers=10, n_users=n_users, seed=0)
        solvers = [
            RandomProvisioning(seed=0),
            JointDeploymentRouting(),
            GreedyCombineOG(),
            SoCL(),
        ]
        rows.extend(
            compare_algorithms(instance, solvers, params={"n_users": n_users})
        )
    print(
        format_table(
            rows,
            columns=[
                "n_users",
                "algorithm",
                "objective",
                "cost",
                "latency_sum",
                "runtime",
                "feasible",
            ],
        )
    )


def optimal_gap() -> None:
    print("\n=== SoCL vs exact ILP (small scale) ===")
    rows = []
    for n_users in (4, 6, 8):
        instance = small_scenario(n_servers=6, n_users=n_users, seed=0)
        opt = OptimalSolver(time_limit=120).solve(instance)
        socl = SoCL().solve(instance)
        gap = (
            (socl.report.objective - opt.report.objective)
            / opt.report.objective
            * 100.0
        )
        rows.append(
            {
                "n_users": n_users,
                "OPT_objective": opt.report.objective,
                "OPT_runtime": opt.runtime,
                "SoCL_objective": socl.report.objective,
                "SoCL_runtime": socl.runtime,
                "gap_pct": gap,
            }
        )
    print(format_table(rows))


if __name__ == "__main__":
    heuristic_sweep()
    optimal_gap()
