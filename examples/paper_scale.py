"""Full paper-scale experiment runner (slow: several minutes).

Runs the evaluation at the paper's actual sizes rather than the reduced
benchmark scales:

* Fig. 8 — 10 servers, user scales 80/120/160/200, all four heuristics;
* Fig. 7 — SoCL vs exact ILP up to the point where the ILP takes
  minutes (pass ``--opt-users`` to push further);
* Fig. 10 — 16 nodes, 50 mobile users, 48 five-minute slots.

Run:  python examples/paper_scale.py [--skip-opt] [--skip-trace]
"""

import argparse

from repro import (
    GreedyCombineOG,
    JointDeploymentRouting,
    OptimalSolver,
    RandomProvisioning,
    SoCL,
    compare_algorithms,
    paper_scenario,
    small_scenario,
)
from repro.experiments import figures, format_table


def fig8_full() -> None:
    print("=== Fig. 8: heuristics at 80/120/160/200 users (10 servers) ===")
    rows = []
    for n_users in (80, 120, 160, 200):
        instance = paper_scenario(n_servers=10, n_users=n_users, seed=0)
        solvers = [
            RandomProvisioning(seed=0),
            JointDeploymentRouting(),
            GreedyCombineOG(),
            SoCL(),
        ]
        rows.extend(
            compare_algorithms(instance, solvers, params={"n_users": n_users})
        )
        print(f"  ... {n_users} users done")
    print(
        format_table(
            rows,
            columns=[
                "n_users",
                "algorithm",
                "objective",
                "cost",
                "latency_sum",
                "runtime",
            ],
        )
    )


def fig7_full(max_users: int) -> None:
    print(f"\n=== Fig. 7: SoCL vs OPT up to {max_users} users (8 servers) ===")
    rows = []
    n = 4
    while n <= max_users:
        instance = small_scenario(n_servers=8, n_users=n, seed=0)
        opt = OptimalSolver(time_limit=600).solve(instance)
        socl = SoCL().solve(instance)
        gap = (
            (socl.report.objective - opt.report.objective)
            / opt.report.objective
            * 100.0
        )
        rows.append(
            {
                "n_users": n,
                "OPT_obj": opt.report.objective,
                "OPT_runtime": opt.runtime,
                "OPT_status": opt.extra["status"],
                "SoCL_obj": socl.report.objective,
                "SoCL_runtime": socl.runtime,
                "gap_pct": gap,
            }
        )
        print(f"  ... {n} users: OPT {opt.runtime:.1f}s, SoCL {socl.runtime:.2f}s")
        n += 2
    print(format_table(rows))


def fig10_full() -> None:
    print("\n=== Fig. 10: 4-hour mobility trace (16 nodes, 50 users) ===")
    series = figures.fig10_trace(n_servers=16, n_users=50, n_slots=48, seed=0)
    for name, data in series.items():
        print(
            f"{name:8s} mean_delay={data['mean_delay']:.3f}s "
            f"max_delay={data['max_delay']:.3f}s"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-opt", action="store_true")
    parser.add_argument("--skip-trace", action="store_true")
    parser.add_argument("--opt-users", type=int, default=12)
    args = parser.parse_args()

    fig8_full()
    if not args.skip_opt:
        fig7_full(args.opt_users)
    if not args.skip_trace:
        fig10_full()
