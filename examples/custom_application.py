"""Bring your own application: define a custom microservice DAG and
provision it on a custom topology through the public API.

Demonstrates the pieces a downstream user composes: microservices with
resource parameters, a dependency DAG with entrypoints, a hand-built
edge network, a workload, and the solver — plus how to inspect the
partition structure SoCL derives.

Run:  python examples/custom_application.py
"""

from repro import (
    Application,
    EdgeNetwork,
    EdgeServer,
    Link,
    Microservice,
    ProblemConfig,
    ProblemInstance,
    SoCL,
    WorkloadSpec,
    generate_requests,
)


def build_video_pipeline() -> Application:
    """A small video-analytics pipeline: ingest → detect → {track, ocr} → db."""
    services = [
        Microservice(0, "ingest", compute=1.0, storage=1.0, deploy_cost=200.0, data_out=4.0),
        Microservice(1, "detector", compute=3.0, storage=2.0, deploy_cost=350.0, data_out=1.5),
        Microservice(2, "tracker", compute=2.0, storage=1.5, deploy_cost=300.0, data_out=0.8),
        Microservice(3, "ocr", compute=2.5, storage=1.5, deploy_cost=320.0, data_out=0.5),
        Microservice(4, "metadata-db", compute=1.5, storage=2.5, deploy_cost=280.0, data_out=0.4),
    ]
    dependencies = [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)]
    return Application(services, dependencies, entrypoints=[0], name="video-analytics")


def build_campus_network() -> EdgeNetwork:
    """Six edge servers: a dense campus core plus two remote sites."""
    servers = [
        EdgeServer(0, compute=18.0, storage=8.0, position=(0.0, 0.0), name="core-a"),
        EdgeServer(1, compute=16.0, storage=7.0, position=(0.5, 0.2), name="core-b"),
        EdgeServer(2, compute=12.0, storage=6.0, position=(0.3, 0.6), name="core-c"),
        EdgeServer(3, compute=8.0, storage=5.0, position=(2.0, 0.5), name="lab"),
        EdgeServer(4, compute=6.0, storage=4.0, position=(2.4, 1.4), name="gate"),
        EdgeServer(5, compute=10.0, storage=6.0, position=(1.2, 2.2), name="dorm"),
    ]
    links = [
        Link(0, 1, bandwidth=80.0, gain=4.0),
        Link(0, 2, bandwidth=70.0, gain=3.0),
        Link(1, 2, bandwidth=75.0, gain=3.5),
        Link(1, 3, bandwidth=40.0, gain=1.0),
        Link(3, 4, bandwidth=30.0, gain=1.5),
        Link(2, 5, bandwidth=35.0, gain=1.2),
        Link(4, 5, bandwidth=25.0, gain=0.8),
    ]
    return EdgeNetwork(servers, links)


def main() -> None:
    app = build_video_pipeline()
    network = build_campus_network()
    requests = generate_requests(
        network,
        app,
        WorkloadSpec(n_users=24, min_chain=3, max_chain=5, data_scale=10.0),
        rng=7,
    )
    instance = ProblemInstance(
        network, app, requests, ProblemConfig(weight=0.4, budget=3000.0)
    )

    result = SoCL().solve(instance)
    print(result.report)
    print(f"feasible: {result.feasibility.feasible}")

    print("\npartitions per service (Alg. 1 output):")
    for svc in result.partitions.services:
        part = result.partitions.partition(svc)
        name = app.service(svc).name
        groups = [
            f"{g} (+{sorted(part.candidates[s])} candidates)"
            if part.candidates[s]
            else f"{g}"
            for s, g in enumerate(part.groups)
        ]
        print(f"  {name:<12s} ξ={part.xi:8.2f}  groups: {'; '.join(groups)}")

    print("\nfinal placement:")
    for svc in instance.requested_services:
        hosts = [network.servers[int(k)].label for k in result.placement.hosts(int(svc))]
        print(f"  {app.service(int(svc)).name:<12s} → {hosts}")


if __name__ == "__main__":
    main()
