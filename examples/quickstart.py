"""Quickstart: provision the eshopOnContainers app on an edge network.

Builds the paper's §V.A simulation setting (stadium base stations, 10
edge servers, 40 users), runs the full SoCL pipeline, and prints the
objective breakdown, feasibility, stage timings and where each
microservice ended up.

Run:  python examples/quickstart.py
"""

from repro import SoCL, SoCLConfig, paper_scenario


def main() -> None:
    instance = paper_scenario(n_servers=10, n_users=40, budget=6000.0, seed=0)
    print(f"instance: {instance}")
    print(
        f"requested services: {len(instance.requested_services)} "
        f"of {instance.n_services}"
    )

    result = SoCL(SoCLConfig(omega=0.2, theta=1.0)).solve(instance)

    print("\n=== SoCL result ===")
    print(result.report)
    print(f"feasible: {result.feasibility.feasible}")
    print(f"instances deployed: {result.placement.total_instances}")
    print(
        "stage times: "
        + ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in result.stage_times.items())
    )
    print(
        f"combination: {result.stats.parallel_merges} parallel merges in "
        f"{result.stats.parallel_rounds} rounds, {result.stats.serial_merges} "
        f"serial merges, {result.stats.rollbacks} rollbacks"
    )

    print("\n=== placement ===")
    for svc in instance.requested_services:
        hosts = result.placement.hosts(int(svc))
        name = instance.app.service(int(svc)).name
        print(f"  {name:<26s} on servers {list(map(int, hosts))}")

    lat = result.report.latencies
    print(
        f"\nper-request latency: mean={lat.mean():.3f}s "
        f"median={sorted(lat)[len(lat) // 2]:.3f}s max={lat.max():.3f}s"
    )


if __name__ == "__main__":
    main()
