"""Online provisioning under user mobility — the Fig. 10 experiment.

50 users move among 16 edge nodes (random waypoint) and issue requests
every 5-minute slot; each algorithm re-provisions per slot and the
discrete-event cluster replays the traffic, with the warm-instance pool
carried across slots so placement churn surfaces as cold starts.

Prints the per-slot average-delay series and the trace-level summary
(paper: SoCL lowest average delay ≈ 8.5 ms per timestamp and lowest
maximum delay).

Run:  python examples/online_mobility_trace.py
"""

from repro import (
    JointDeploymentRouting,
    ProblemConfig,
    RandomProvisioning,
    SoCL,
    WorkloadSpec,
    eshop_application,
    stadium_topology,
)
from repro.runtime import OnlineSimulator


def main() -> None:
    network = stadium_topology(16, seed=11)
    app = eshop_application()
    config = ProblemConfig(weight=0.5, budget=6000.0)
    workload = WorkloadSpec(n_users=50, data_scale=5.0)
    n_slots = 24  # two hours of 5-minute slots; paper uses 48

    results = {}
    for solver in (RandomProvisioning(seed=2), JointDeploymentRouting(), SoCL()):
        sim = OnlineSimulator(network, app, config, workload, seed=42)
        results[solver.name] = sim.run(solver, n_slots=n_slots)

    print(f"=== per-slot average delay over {n_slots} slots (seconds) ===")
    header = "slot " + "".join(f"{name:>10s}" for name in results)
    print(header)
    for t in range(n_slots):
        row = f"{t:4d} " + "".join(
            f"{res.slot_means()[t]:10.3f}" for res in results.values()
        )
        print(row)

    print("\n=== trace summary ===")
    for name, res in results.items():
        cold = sum(s.cold_starts for s in res.slots)
        churn = sum(s.churn for s in res.slots) / len(res.slots)
        print(
            f"{name:8s} mean_delay={res.mean_delay:7.3f}s "
            f"max_delay={res.max_delay:8.3f}s cold_starts={cold:4d} "
            f"avg_user_churn={churn:.2%}"
        )


if __name__ == "__main__":
    main()
